//! Flat struct-of-arrays circuits with interval-first evaluation.
//!
//! The pointer-y [`Node`] tree of [`crate::circuit`] is the *compilation*
//! representation: easy to grow, memoize, and extract. It is a poor
//! *evaluation* representation — every `Product` owns a heap
//! `Vec<NodeId>`, every gate visit chases it, and every leaf and decision
//! re-queries the weight function (a hash lookup plus a `Rational` clone
//! per gate per weighting). [`FlatCircuit`] is the evaluation form the
//! compile-once / evaluate-many workloads of the paper's §3 block
//! constructions deserve:
//!
//! * **dense `u32` ids in topological order** — gate `g`'s children all
//!   have ids `< g`, so evaluation is one forward loop, no recursion, no
//!   hashing;
//! * **struct-of-arrays layout** — parallel slices `ops` / `var_slot` /
//!   `(off, len)` spans into one packed `children` vector: no per-gate
//!   allocation anywhere;
//! * **a distinct-variable slot table** — weights are resolved *once per
//!   distinct variable* into a dense slice ([`FlatCircuit::resolve_weights`]),
//!   and the per-gate loop just indexes it;
//! * **interval-first evaluation** — [`FlatCircuit::eval_interval_with`]
//!   prices every gate in certified outward-rounded `f64`
//!   ([`Interval`]) at a few nanoseconds per gate; callers that only need
//!   a comparison consult the certified verdict ([`Certifies`]) and fall
//!   back to the exact pass ([`FlatCircuit::eval_exact_with`], or the
//!   per-gate [`FlatCircuit::eval_exact_at`] with its sparse overlay)
//!   only when the enclosure cannot decide. Whenever an output
//!   `Rational` (not just a comparison) is demanded, the exact pass runs
//!   in full — results stay bit-identical to the tree evaluator.
//!
//! Exactness contract: for every circuit and every weight function,
//! `flat.eval_exact(w) == tree.evaluate(w) == wmc_brute_force(f, w)`
//! (`Rational` equality, i.e. bit identity in lowest terms) — enforced by
//! `tests/flat_suite.rs` and the engine's property suites.

use crate::circuit::{Circuit, Compiler, EvalArena, Node, Valuation};
use crate::cnf::Var;
use crate::wmc::WeightFn;
use gfomc_arith::{Certifies, Interval, Rat64, Rational};
use gfomc_pool::WorkerPool;
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Cap on `gates × lanes` hybrid cells held live by one batch-kernel
/// call; batches wider than `MAX_BATCH_CELLS / gate_count` lanes are
/// priced in consecutive chunks (exact arithmetic, so chunking cannot
/// change any value).
const MAX_BATCH_CELLS: usize = 1 << 18;

/// One gate value of the hybrid exact pass: machine words while every
/// intermediate fits ([`Rat64`]), exact bignum from the first overflow on.
/// Both forms are in lowest terms, so materializing a lane via
/// [`LaneVal::to_rational`] is bit-identical to an all-bignum evaluation.
#[derive(Clone, Debug)]
pub(crate) enum LaneVal {
    /// Machine-word value (the common case: no heap traffic at all).
    S(Rat64),
    /// Spilled to exact bignum.
    B(Rational),
}

impl LaneVal {
    #[inline]
    pub(crate) fn is_zero(&self) -> bool {
        match self {
            LaneVal::S(r) => r.is_zero(),
            LaneVal::B(r) => r.is_zero(),
        }
    }

    /// The exact value, materialized (canonical lowest terms either way).
    #[inline]
    pub(crate) fn to_rational(&self) -> Rational {
        match self {
            LaneVal::S(r) => Rational::from(*r),
            LaneVal::B(r) => r.clone(),
        }
    }
}

/// One distinct variable's weight, resolved once per weighting: the exact
/// probability, its complement (computed once here instead of once per
/// decision gate), and their machine-word forms when they fit.
#[derive(Clone, Debug)]
pub(crate) struct SlotW {
    pub(crate) p: Rational,
    pub(crate) pc: Rational,
    pub(crate) ps: Option<Rat64>,
    pub(crate) pcs: Option<Rat64>,
}

impl SlotW {
    pub(crate) fn new(p: Rational) -> SlotW {
        let pc = p.complement();
        SlotW {
            ps: p.to_rat64(),
            pcs: pc.to_rat64(),
            p,
            pc,
        }
    }

    /// The leaf value `w(v)` as a lane.
    #[inline]
    pub(crate) fn leaf(&self) -> LaneVal {
        match self.ps {
            Some(r) => LaneVal::S(r),
            None => LaneVal::B(self.p.clone()),
        }
    }
}

/// `a · b` on hybrid lanes: machine words unless an operand already
/// spilled or the product overflows.
#[inline]
pub(crate) fn mul_lane(a: &LaneVal, b: &LaneVal) -> LaneVal {
    match (a, b) {
        (LaneVal::S(x), LaneVal::S(y)) => match x.checked_mul(*y) {
            Some(r) => LaneVal::S(r),
            None => LaneVal::B(&Rational::from(*x) * &Rational::from(*y)),
        },
        (a, b) => LaneVal::B(&a.to_rational() * &b.to_rational()),
    }
}

/// The Shannon gate `w·hi + (1 − w)·lo` on hybrid lanes.
#[inline]
pub(crate) fn decision_lane(s: &SlotW, hi: &LaneVal, lo: &LaneVal) -> LaneVal {
    if let (Some(p), Some(pc), LaneVal::S(h), LaneVal::S(l)) = (s.ps, s.pcs, hi, lo) {
        if let Some(t1) = p.checked_mul(*h) {
            if let Some(t2) = pc.checked_mul(*l) {
                if let Some(r) = t1.checked_add(t2) {
                    return LaneVal::S(r);
                }
            }
        }
    }
    let hi = hi.to_rational();
    let lo = lo.to_rational();
    LaneVal::B(&(&s.p * &hi) + &(&s.pc * &lo))
}

/// Process-wide count of interval-evaluation fallbacks to exact
/// arithmetic in [`FlatCircuit::le_exact`] — a telemetry counter: it
/// observes the decision, never influences it.
static INTERVAL_FALLBACKS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Per-thread slice of [`INTERVAL_FALLBACKS`]. The compiled route
    /// evaluates on the request's own thread, so a before/after read of
    /// this cell attributes fallbacks to one request exactly.
    static INTERVAL_FALLBACKS_THREAD: Cell<u64> = const { Cell::new(0) };
}

/// Total [`FlatCircuit::le_exact`] interval→exact fallbacks across the
/// process (monotone; exported to the engine's `/metrics` gauges).
pub fn interval_fallbacks_total() -> u64 {
    INTERVAL_FALLBACKS.load(Ordering::Relaxed)
}

/// This thread's share of [`interval_fallbacks_total`] — read it before
/// and after an evaluation to attribute fallbacks to that evaluation.
pub fn interval_fallbacks_thread() -> u64 {
    INTERVAL_FALLBACKS_THREAD.with(Cell::get)
}

/// Gate opcode of a [`FlatCircuit`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum Op {
    /// The constant `0` (`⊥`).
    False,
    /// The constant `1` (`⊤`).
    True,
    /// A positive literal: value `w(v)` for the gate's slot variable.
    Leaf,
    /// Decomposable product of the gate's children.
    Product,
    /// Shannon split `w(v)·hi + (1 − w(v))·lo`; children are `[hi, lo]`.
    Decision,
}

/// Slot sentinel for gates without a variable.
pub(crate) const NO_SLOT: u32 = u32::MAX;

/// A flat, topologically ordered, struct-of-arrays arithmetic circuit.
///
/// Produced by [`Circuit::flatten`] (single root) or
/// [`Compiler::finish_flat`] (whole multi-rooted pool, ids preserved).
/// Gate ids are dense `u32`s with children before parents; the layout is
/// four parallel slices plus one packed child vector — no per-gate heap
/// allocation:
///
/// ```text
/// gate g:   ops[g]       opcode
///           var_slot[g]  index into vars() for Leaf/Decision, unused otherwise
///           off[g]..off[g]+len[g]   g's children inside `children`
/// ```
#[derive(Clone, Debug)]
pub struct FlatCircuit {
    pub(crate) ops: Vec<Op>,
    pub(crate) var_slot: Vec<u32>,
    off: Vec<u32>,
    len: Vec<u32>,
    children: Vec<u32>,
    vars: Vec<Var>,
    root: u32,
}

impl FlatCircuit {
    fn from_pool(nodes: &[Node], root: u32) -> FlatCircuit {
        let n = nodes.len();
        let mut ops = Vec::with_capacity(n);
        let mut var_slot = Vec::with_capacity(n);
        let mut off = Vec::with_capacity(n);
        let mut len = Vec::with_capacity(n);
        let mut children = Vec::new();
        let mut vars: Vec<Var> = Vec::new();
        let mut slot_of: HashMap<Var, u32> = HashMap::new();
        let intern = |v: Var, vars: &mut Vec<Var>, slot_of: &mut HashMap<Var, u32>| {
            *slot_of.entry(v).or_insert_with(|| {
                vars.push(v);
                (vars.len() - 1) as u32
            })
        };
        for node in nodes {
            let start = children.len() as u32;
            let (op, slot) = match node {
                Node::False => (Op::False, NO_SLOT),
                Node::True => (Op::True, NO_SLOT),
                Node::Leaf(v) => (Op::Leaf, intern(*v, &mut vars, &mut slot_of)),
                Node::Product(kids) => {
                    children.extend(kids.iter().map(|k| k.0));
                    (Op::Product, NO_SLOT)
                }
                Node::Decision { var, hi, lo } => {
                    children.push(hi.0);
                    children.push(lo.0);
                    (Op::Decision, intern(*var, &mut vars, &mut slot_of))
                }
            };
            ops.push(op);
            var_slot.push(slot);
            off.push(start);
            len.push(children.len() as u32 - start);
        }
        FlatCircuit {
            ops,
            var_slot,
            off,
            len,
            children,
            vars,
            root,
        }
    }

    /// Number of gates (including the two constants) — the unit of the
    /// engine's cache-admission cost and of
    /// `gfomc_safety::CircuitCostEstimate`.
    pub fn gate_count(&self) -> usize {
        self.ops.len()
    }

    /// The root gate id.
    pub fn root(&self) -> u32 {
        self.root
    }

    /// The opcode of a gate.
    pub fn op(&self, gate: u32) -> Op {
        self.ops[gate as usize]
    }

    /// The distinct variables of the circuit, in slot order.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// Number of Shannon-split gates.
    pub fn decision_count(&self) -> usize {
        self.ops.iter().filter(|o| **o == Op::Decision).count()
    }

    /// The packed children of a gate.
    #[inline]
    pub(crate) fn kids(&self, g: usize) -> &[u32] {
        let off = self.off[g] as usize;
        &self.children[off..off + self.len[g] as usize]
    }

    /// Resolves `w` into one exact weight per distinct variable, in slot
    /// order — the per-weighting setup that lets the per-gate loop index a
    /// dense slice instead of re-querying `w` at every leaf and decision.
    pub fn resolve_weights<W: WeightFn>(&self, w: &W, out: &mut Vec<Rational>) {
        out.clear();
        out.reserve(self.vars.len());
        for &v in &self.vars {
            let p = w.weight(v);
            assert!(p.is_probability(), "weight out of [0,1] for {v:?}");
            out.push(p);
        }
    }

    /// Resolves `w` into one [`SlotW`] per distinct variable: weight,
    /// complement (once per variable, not once per decision gate), and
    /// their machine-word forms.
    pub(crate) fn resolve_slots<W: WeightFn>(&self, w: &W, out: &mut Vec<SlotW>) {
        out.clear();
        out.reserve(self.vars.len());
        for &v in &self.vars {
            let p = w.weight(v);
            assert!(p.is_probability(), "weight out of [0,1] for {v:?}");
            out.push(SlotW::new(p));
        }
    }

    /// The hybrid exact forward pass: one [`LaneVal`] per gate. Values
    /// stay in machine words ([`Rat64`]) until an op overflows, then spill
    /// to bignum — either way exact and in lowest terms, so the pass is
    /// bit-identical to an all-bignum evaluation.
    pub(crate) fn eval_cells_into(&self, slots: &[SlotW], cells: &mut Vec<LaneVal>) {
        cells.clear();
        cells.reserve(self.ops.len());
        for g in 0..self.ops.len() {
            let val = match self.ops[g] {
                Op::True => LaneVal::S(Rat64::ONE),
                Op::False => LaneVal::S(Rat64::ZERO),
                Op::Leaf => slots[self.var_slot[g] as usize].leaf(),
                Op::Product => {
                    let mut acc = LaneVal::S(Rat64::ONE);
                    for &k in self.kids(g) {
                        acc = mul_lane(&acc, &cells[k as usize]);
                        if acc.is_zero() {
                            break;
                        }
                    }
                    acc
                }
                Op::Decision => {
                    let s = &slots[self.var_slot[g] as usize];
                    let kids = self.kids(g);
                    decision_lane(s, &cells[kids[0] as usize], &cells[kids[1] as usize])
                }
            };
            cells.push(val);
        }
    }

    /// The exact forward pass: one value per gate into `values`. `w` must
    /// be slot-resolved weights ([`FlatCircuit::resolve_weights`]).
    fn eval_exact_into(&self, w: &[Rational], values: &mut Vec<Rational>) {
        let slots: Vec<SlotW> = w.iter().map(|p| SlotW::new(p.clone())).collect();
        let mut cells = Vec::new();
        self.eval_cells_into(&slots, &mut cells);
        values.clear();
        values.reserve(cells.len());
        values.extend(cells.iter().map(LaneVal::to_rational));
    }

    /// The interval forward pass: one certified enclosure per gate.
    ///
    /// Every gate value of a monotone circuit under probability weights is
    /// itself a probability, so each step intersects with `[0, 1]`
    /// ([`Interval::clamp_unit`]) to undo the outward nudges' drift.
    pub(crate) fn eval_interval_into(&self, w: &[Interval], out: &mut Vec<Interval>) {
        out.clear();
        out.reserve(self.ops.len());
        for g in 0..self.ops.len() {
            let iv = match self.ops[g] {
                Op::True => Interval::ONE,
                Op::False => Interval::ZERO,
                Op::Leaf => w[self.var_slot[g] as usize],
                Op::Product => {
                    let mut acc = Interval::ONE;
                    for &k in self.kids(g) {
                        acc = acc.mul(&out[k as usize]).clamp_unit();
                    }
                    acc
                }
                Op::Decision => {
                    let p = &w[self.var_slot[g] as usize];
                    let kids = self.kids(g);
                    let hi = &out[kids[0] as usize];
                    let lo = &out[kids[1] as usize];
                    p.mul(hi).add(&p.one_minus().mul(lo)).clamp_unit()
                }
            };
            out.push(iv);
        }
    }

    /// `Pr(F, w)` exactly, reusing the arena's slabs across weightings.
    /// Bit-identical to [`Circuit::evaluate_with`] on the tree form; only
    /// the root value is materialized as a [`Rational`] — interior gates
    /// stay in the hybrid machine-word lane.
    pub fn eval_exact_with<W: WeightFn>(&self, w: &W, arena: &mut EvalArena) -> Rational {
        self.resolve_slots(w, &mut arena.slots);
        let (slots, cells) = (&arena.slots, &mut arena.cells);
        self.eval_cells_into(slots, cells);
        cells[self.root as usize].to_rational()
    }

    /// `Pr(F, w)` exactly, with a throwaway arena.
    pub fn eval_exact<W: WeightFn>(&self, w: &W) -> Rational {
        let mut arena = EvalArena::with_capacity(self.gate_count());
        self.eval_exact_with(w, &mut arena)
    }

    /// A certified enclosure of `Pr(F, w)` — the fast path. Converts each
    /// distinct weight with directed rounding, then runs the interval
    /// forward pass (plain `Copy` doubles, no heap traffic).
    pub fn eval_interval_with<W: WeightFn>(&self, w: &W, arena: &mut EvalArena) -> Interval {
        self.resolve_weights(w, &mut arena.slot_weights);
        arena.slot_intervals.clear();
        arena
            .slot_intervals
            .extend(arena.slot_weights.iter().map(Interval::from_probability));
        let (slots, intervals) = (&arena.slot_intervals, &mut arena.intervals);
        self.eval_interval_into(slots, intervals);
        intervals[self.root as usize]
    }

    /// A certified enclosure of `Pr(F, w)`, with a throwaway arena.
    pub fn eval_interval<W: WeightFn>(&self, w: &W) -> Interval {
        let mut arena = EvalArena::new();
        self.eval_interval_with(w, &mut arena)
    }

    /// Exact value of a single gate, re-pricing **only the gates reachable
    /// from it** through the arena's sparse overlay.
    ///
    /// This is the per-gate fallback of interval-first evaluation: after a
    /// fast interval pass, a caller that needs one undecided gate exactly
    /// pays for that gate's cone, not the whole pool — and repeated calls
    /// share the overlay, so common sub-cones are priced once. The overlay
    /// is keyed to one (circuit, weighting) pair; callers switching either
    /// must reset it via [`EvalArena::default`]-fresh slabs (the engine's
    /// evaluate paths do this by construction, resolving weights first).
    ///
    /// `w` must be the slot-resolved weights from
    /// [`FlatCircuit::resolve_weights`].
    pub fn eval_exact_at(
        &self,
        gate: u32,
        w: &[Rational],
        overlay: &mut Vec<Option<Rational>>,
    ) -> Rational {
        if overlay.len() < self.ops.len() {
            overlay.resize(self.ops.len(), None);
        }
        let mut stack: Vec<(u32, bool)> = vec![(gate, false)];
        while let Some((g, expanded)) = stack.pop() {
            let gi = g as usize;
            if overlay[gi].is_some() {
                continue;
            }
            if !expanded {
                match self.ops[gi] {
                    Op::True => overlay[gi] = Some(Rational::one()),
                    Op::False => overlay[gi] = Some(Rational::zero()),
                    Op::Leaf => {
                        overlay[gi] = Some(w[self.var_slot[gi] as usize].clone());
                    }
                    Op::Product | Op::Decision => {
                        stack.push((g, true));
                        stack.extend(self.kids(gi).iter().map(|&k| (k, false)));
                    }
                }
            } else {
                let val = match self.ops[gi] {
                    Op::Product => {
                        let mut acc = Rational::one();
                        for &k in self.kids(gi) {
                            let kid = overlay[k as usize].as_ref().expect("child priced");
                            acc = &acc * kid;
                            if acc.is_zero() {
                                break;
                            }
                        }
                        acc
                    }
                    Op::Decision => {
                        let p = &w[self.var_slot[gi] as usize];
                        let kids = self.kids(gi);
                        let hi = overlay[kids[0] as usize].as_ref().expect("child priced");
                        let lo = overlay[kids[1] as usize].as_ref().expect("child priced");
                        &(p * hi) + &(&p.complement() * lo)
                    }
                    _ => unreachable!("constants and leaves priced on first visit"),
                };
                overlay[gi] = Some(val);
            }
        }
        overlay[gate as usize].clone().expect("root priced")
    }

    /// Certified verdict for `Pr(F, w) ≤ t` from the interval pass alone
    /// — [`Certifies::Unknown`] when the enclosure straddles `t`.
    pub fn proves_le<W: WeightFn>(&self, w: &W, t: &Rational, arena: &mut EvalArena) -> Certifies {
        self.eval_interval_with(w, arena).proves_le_rational(t)
    }

    /// Definite answer for `Pr(F, w) ≤ t`: interval fast path first, exact
    /// re-pricing of the root's cone only on [`Certifies::Unknown`].
    /// Returns `(answer, fell_back_to_exact)`.
    pub fn le_exact<W: WeightFn>(
        &self,
        w: &W,
        t: &Rational,
        arena: &mut EvalArena,
    ) -> (bool, bool) {
        match self.proves_le(w, t, arena) {
            Certifies::Proven(b) => (b, false),
            Certifies::Unknown => {
                INTERVAL_FALLBACKS.fetch_add(1, Ordering::Relaxed);
                INTERVAL_FALLBACKS_THREAD.with(|c| c.set(c.get() + 1));
                arena.overlay.clear();
                let exact = self.eval_exact_at(self.root, &arena.slot_weights, &mut arena.overlay);
                (&exact <= t, true)
            }
        }
    }

    /// Evaluates **every** gate exactly under `w` in one forward pass —
    /// the flat analogue of [`Compiler::evaluate_all`] for multi-rooted
    /// pools built by [`Compiler::finish_flat`] (ids are preserved, so
    /// `NodeId`s returned by [`Compiler::compile`] index the result).
    pub fn evaluate_all<W: WeightFn>(&self, w: &W) -> Valuation {
        let mut arena = EvalArena::with_capacity(self.gate_count());
        self.resolve_weights(w, &mut arena.slot_weights);
        self.eval_exact_into(&arena.slot_weights, &mut arena.values);
        Valuation {
            values: std::mem::take(&mut arena.values),
        }
    }

    /// Lanes per batch-kernel call: enough to amortize the topological
    /// walk, bounded so `gates × lanes` hybrid cells stay in cache-ish
    /// memory even for huge pools.
    fn batch_chunk_lanes(&self) -> usize {
        (MAX_BATCH_CELLS / self.gate_count().max(1)).max(1)
    }

    /// The batch forward pass: fills `arena.lane_cells` with a gate-major
    /// `values[gate][lane]` hybrid matrix — **one** walk of `ops` /
    /// `children` prices all `ws.len()` weightings, so the topological
    /// scan and children decoding amortize across the batch.
    fn eval_batch_cells<W: WeightFn>(&self, ws: &[W], arena: &mut EvalArena) {
        let k = ws.len();
        let nslots = self.vars.len().max(1);
        // Lane-major slot table: lane `l`'s weights at `l*nslots..`.
        let mut slots: Vec<SlotW> = Vec::with_capacity(k * nslots);
        for w in ws {
            for &v in &self.vars {
                let p = w.weight(v);
                assert!(p.is_probability(), "weight out of [0,1] for {v:?}");
                slots.push(SlotW::new(p));
            }
            if self.vars.is_empty() {
                slots.push(SlotW::new(Rational::one()));
            }
        }
        let cells = &mut arena.lane_cells;
        cells.clear();
        cells.resize(self.ops.len() * k, LaneVal::S(Rat64::ZERO));
        for g in 0..self.ops.len() {
            let row = g * k;
            // Children precede parents, so rows before `row` are final.
            let (done, rest) = cells.split_at_mut(row);
            let cur = &mut rest[..k];
            match self.ops[g] {
                // `False` rows keep the ZERO fill.
                Op::False => {}
                Op::True => cur.fill(LaneVal::S(Rat64::ONE)),
                Op::Leaf => {
                    let slot = self.var_slot[g] as usize;
                    for (l, cell) in cur.iter_mut().enumerate() {
                        *cell = slots[l * nslots + slot].leaf();
                    }
                }
                Op::Product => {
                    cur.fill(LaneVal::S(Rat64::ONE));
                    for &kid in self.kids(g) {
                        let krow = &done[kid as usize * k..kid as usize * k + k];
                        for (cell, kv) in cur.iter_mut().zip(krow) {
                            if !cell.is_zero() {
                                *cell = mul_lane(cell, kv);
                            }
                        }
                    }
                }
                Op::Decision => {
                    let slot = self.var_slot[g] as usize;
                    let kids = self.kids(g);
                    let hrow = &done[kids[0] as usize * k..kids[0] as usize * k + k];
                    let lrow = &done[kids[1] as usize * k..kids[1] as usize * k + k];
                    for (l, cell) in cur.iter_mut().enumerate() {
                        *cell = decision_lane(&slots[l * nslots + slot], &hrow[l], &lrow[l]);
                    }
                }
            }
        }
    }

    /// Exact root values for a whole batch of weightings in **one**
    /// topological walk (the many-weightings-per-gate-visit kernel).
    /// Output order matches input order; every value is bit-identical to
    /// the serial [`FlatCircuit::eval_exact_with`] loop.
    pub fn eval_batch_exact_with<W: WeightFn>(
        &self,
        ws: &[W],
        arena: &mut EvalArena,
    ) -> Vec<Rational> {
        let mut out = Vec::with_capacity(ws.len());
        for chunk in ws.chunks(self.batch_chunk_lanes()) {
            self.eval_batch_cells(chunk, arena);
            let row = self.root as usize * chunk.len();
            out.extend(
                arena.lane_cells[row..row + chunk.len()]
                    .iter()
                    .map(LaneVal::to_rational),
            );
        }
        out
    }

    /// Certified root enclosures for a whole batch of weightings in one
    /// topological walk — the interval-first lane of the batch kernel
    /// (plain `Copy` doubles, no heap traffic at all).
    pub fn eval_batch_interval_with<W: WeightFn>(
        &self,
        ws: &[W],
        arena: &mut EvalArena,
    ) -> Vec<Interval> {
        let mut out = Vec::with_capacity(ws.len());
        for ws in ws.chunks(self.batch_chunk_lanes()) {
            let k = ws.len();
            let nslots = self.vars.len().max(1);
            let mut slots: Vec<Interval> = Vec::with_capacity(k * nslots);
            for w in ws {
                for &v in &self.vars {
                    let p = w.weight(v);
                    assert!(p.is_probability(), "weight out of [0,1] for {v:?}");
                    slots.push(Interval::from_probability(&p));
                }
                if self.vars.is_empty() {
                    slots.push(Interval::ONE);
                }
            }
            let ivs = &mut arena.lane_intervals;
            ivs.clear();
            ivs.resize(self.ops.len() * k, Interval::ZERO);
            for g in 0..self.ops.len() {
                let row = g * k;
                let (done, rest) = ivs.split_at_mut(row);
                let cur = &mut rest[..k];
                match self.ops[g] {
                    Op::False => {}
                    Op::True => cur.fill(Interval::ONE),
                    Op::Leaf => {
                        let slot = self.var_slot[g] as usize;
                        for (l, iv) in cur.iter_mut().enumerate() {
                            *iv = slots[l * nslots + slot];
                        }
                    }
                    Op::Product => {
                        cur.fill(Interval::ONE);
                        for &kid in self.kids(g) {
                            let krow = &done[kid as usize * k..kid as usize * k + k];
                            for (iv, kv) in cur.iter_mut().zip(krow) {
                                *iv = iv.mul(kv).clamp_unit();
                            }
                        }
                    }
                    Op::Decision => {
                        let slot = self.var_slot[g] as usize;
                        let kids = self.kids(g);
                        let hrow = &done[kids[0] as usize * k..kids[0] as usize * k + k];
                        let lrow = &done[kids[1] as usize * k..kids[1] as usize * k + k];
                        for (l, iv) in cur.iter_mut().enumerate() {
                            let p = &slots[l * nslots + slot];
                            *iv = p
                                .mul(&hrow[l])
                                .add(&p.one_minus().mul(&lrow[l]))
                                .clamp_unit();
                        }
                    }
                }
            }
            let row = self.root as usize * k;
            out.extend_from_slice(&ivs[row..row + k]);
        }
        out
    }

    /// Definite answers for `Pr(F, wᵢ) ≤ t` across a batch: one interval
    /// batch pass first, then an exact re-pricing of the root's cone for
    /// **only** the lanes whose enclosure straddles `t`. Returns
    /// `(answer, fell_back_to_exact)` per lane, bit-identical to a serial
    /// [`FlatCircuit::le_exact`] loop.
    pub fn le_exact_batch<W: WeightFn>(
        &self,
        ws: &[W],
        t: &Rational,
        arena: &mut EvalArena,
    ) -> Vec<(bool, bool)> {
        let ivs = self.eval_batch_interval_with(ws, arena);
        let mut scratch = Vec::new();
        ws.iter()
            .zip(ivs)
            .map(|(w, iv)| match iv.proves_le_rational(t) {
                Certifies::Proven(b) => (b, false),
                Certifies::Unknown => {
                    INTERVAL_FALLBACKS.fetch_add(1, Ordering::Relaxed);
                    INTERVAL_FALLBACKS_THREAD.with(|c| c.set(c.get() + 1));
                    self.resolve_weights(w, &mut scratch);
                    arena.overlay.clear();
                    let exact = self.eval_exact_at(self.root, &scratch, &mut arena.overlay);
                    (&exact <= t, true)
                }
            })
            .collect()
    }

    /// Evaluates **every** gate exactly under each weighting of the batch
    /// in one topological walk — the batched [`FlatCircuit::evaluate_all`]
    /// behind the lifted inclusion–exclusion pool and the Type-II Möbius
    /// cells: one multi-rooted pool, `k` weightings, every root priced.
    pub fn evaluate_all_batch<W: WeightFn>(&self, ws: &[W]) -> Vec<Valuation> {
        let mut out = Vec::with_capacity(ws.len());
        let mut arena = EvalArena::new();
        for chunk in ws.chunks(self.batch_chunk_lanes()) {
            self.eval_batch_cells(chunk, &mut arena);
            let k = chunk.len();
            for l in 0..k {
                out.push(Valuation {
                    values: (0..self.ops.len())
                        .map(|g| arena.lane_cells[g * k + l].to_rational())
                        .collect(),
                });
            }
        }
        out
    }

    /// Exact batch evaluation through the batch kernel: one gate walk per
    /// cell-budget-sized chunk of weightings (`MAX_BATCH_CELLS`).
    /// Output order matches input order and every value is bit-identical
    /// to a serial per-weighting evaluation.
    pub fn evaluate_batch<W: WeightFn>(&self, weights: &[W]) -> Vec<Rational> {
        let mut arena = EvalArena::with_capacity(self.gate_count());
        self.eval_batch_exact_with(weights, &mut arena)
    }

    /// [`FlatCircuit::evaluate_batch`] fanned across `workers` logical
    /// workers of a [`WorkerPool`]. Workers claim **lane chunks** (not
    /// single weightings) from a shared cursor and price each chunk with
    /// the batch kernel, each through a worker-local arena; exact rational
    /// arithmetic makes the output identical to the serial batch for every
    /// worker count.
    pub fn evaluate_batch_on<W: WeightFn + Sync>(
        &self,
        pool: &WorkerPool,
        weights: &[W],
        workers: usize,
    ) -> Vec<Rational> {
        let workers = workers.max(1).min(weights.len().max(1));
        if workers == 1 {
            return self.evaluate_batch(weights);
        }
        // Chunks small enough that every worker gets some, large enough to
        // amortize the per-chunk gate walk.
        let chunk = self
            .batch_chunk_lanes()
            .min(weights.len().div_ceil(workers))
            .max(1);
        let nchunks = weights.len().div_ceil(chunk);
        let cursor = AtomicUsize::new(0);
        let mut out: Vec<Option<Rational>> = vec![None; weights.len()];
        let slots = Mutex::new(&mut out);
        pool.broadcast(workers, |_| {
            let mut arena = EvalArena::with_capacity(self.gate_count());
            let mut local: Vec<(usize, Vec<Rational>)> = Vec::new();
            loop {
                let c = cursor.fetch_add(1, Ordering::Relaxed);
                if c >= nchunks {
                    break;
                }
                let lo = c * chunk;
                let hi = (lo + chunk).min(weights.len());
                local.push((lo, self.eval_batch_exact_with(&weights[lo..hi], &mut arena)));
            }
            let mut slots = slots.lock().expect("batch output lock");
            for (lo, values) in local {
                for (i, value) in values.into_iter().enumerate() {
                    slots[lo + i] = Some(value);
                }
            }
        });
        out.into_iter()
            .map(|v| v.expect("every batch index evaluated"))
            .collect()
    }

    /// Builds the parent index of the circuit: for every gate, the gates
    /// that consume it, in the same packed CSR layout as `children` (one
    /// counting pass, one prefix sum, one scatter — no per-gate
    /// allocation). Each edge of `children` appears exactly once, so
    /// `rev.edge_count() == children.len()`; a gate referenced twice by
    /// the same parent (a `Decision` with `hi == lo` after extraction)
    /// lists that parent twice, mirroring the forward multiplicity.
    pub fn reverse_topology(&self) -> ReverseTopology {
        let n = self.ops.len();
        let mut counts = vec![0u32; n];
        for &k in &self.children {
            counts[k as usize] += 1;
        }
        let mut off = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        for &c in &counts {
            off.push(acc);
            acc += c;
        }
        off.push(acc);
        let mut cursor = off[..n].to_vec();
        let mut parents = vec![0u32; self.children.len()];
        for g in 0..n {
            for &k in self.kids(g) {
                let slot = &mut cursor[k as usize];
                parents[*slot as usize] = g as u32;
                *slot += 1;
            }
        }
        ReverseTopology { off, parents }
    }
}

/// The parent index of a [`FlatCircuit`]: for each gate, the gates that
/// consume it, packed CSR-style exactly like the forward `children`
/// vector. Parents of gate `g` live at `off[g]..off[g+1]` inside
/// `parents`, in ascending forward-scan order (the order parent gates
/// were visited while counting), so walking a gate's parents is one
/// slice index — the structural half of incremental re-pricing.
#[derive(Clone, Debug)]
pub struct ReverseTopology {
    off: Vec<u32>,
    parents: Vec<u32>,
}

impl ReverseTopology {
    /// The gates consuming `g` (with forward multiplicity: a parent
    /// referencing `g` twice appears twice).
    #[inline]
    pub fn parents(&self, g: u32) -> &[u32] {
        let gi = g as usize;
        &self.parents[self.off[gi] as usize..self.off[gi + 1] as usize]
    }

    /// Total parent edges — always equal to the forward `children` count.
    pub fn edge_count(&self) -> usize {
        self.parents.len()
    }
}

impl Circuit {
    /// Flattens a self-contained circuit into its struct-of-arrays
    /// evaluation form. Gate ids and the gate count are preserved 1:1.
    pub fn flatten(&self) -> FlatCircuit {
        FlatCircuit::from_pool(self.nodes(), self.root().0)
    }
}

impl Compiler {
    /// Flattens the compiler's entire multi-rooted pool, preserving ids —
    /// `NodeId`s handed out by [`Compiler::compile`] remain valid gate
    /// ids of the result (the nominal root is the last gate; use
    /// [`FlatCircuit::evaluate_all`] and index by compile-time ids).
    pub fn finish_flat(&self) -> FlatCircuit {
        let root = (self.node_count() - 1) as u32;
        FlatCircuit::from_pool(self.nodes(), root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::{Clause, Cnf};
    use crate::wmc::UniformWeight;

    fn cl(vs: &[u32]) -> Clause {
        Clause::new(vs.iter().map(|&i| Var(i)))
    }

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ints(n, d)
    }

    #[test]
    fn flatten_preserves_counts_and_values() {
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3]), cl(&[3, 4])]);
        let tree = Circuit::compile(&f);
        let flat = tree.flatten();
        assert_eq!(flat.gate_count(), tree.node_count());
        assert_eq!(flat.decision_count(), tree.decision_count());
        assert_eq!(flat.root(), tree.root().0);
        for k in 0..=4 {
            let w = UniformWeight(r(k, 4));
            assert_eq!(flat.eval_exact(&w), tree.evaluate(&w));
        }
    }

    #[test]
    fn interval_encloses_exact_value() {
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3])]);
        let flat = Circuit::compile(&f).flatten();
        for w in [r(1, 2), r(1, 3), r(2, 7)] {
            let w = UniformWeight(w);
            let exact = flat.eval_exact(&w);
            assert!(flat.eval_interval(&w).contains(&exact));
        }
    }

    #[test]
    fn per_gate_fallback_matches_forward_pass() {
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3]), cl(&[3, 4]), cl(&[1, 4])]);
        let flat = Circuit::compile(&f).flatten();
        let w = UniformWeight(r(1, 3));
        let mut arena = EvalArena::new();
        let full = flat.eval_exact_with(&w, &mut arena);
        flat.resolve_weights(&w, &mut arena.slot_weights);
        let mut overlay = Vec::new();
        let at = flat.eval_exact_at(flat.root(), &arena.slot_weights, &mut overlay);
        assert_eq!(at, full);
        // The overlay memoizes: re-asking is answered without re-pricing.
        assert_eq!(
            flat.eval_exact_at(flat.root(), &arena.slot_weights, &mut overlay),
            full
        );
    }

    #[test]
    fn le_exact_decides_correctly_with_and_without_fallback() {
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3])]);
        let flat = Circuit::compile(&f).flatten();
        let w = UniformWeight(r(1, 2));
        let exact = flat.eval_exact(&w); // 5/8
        let mut arena = EvalArena::new();
        // Far threshold: interval decides, no fallback.
        let (ans, fell_back) = flat.le_exact(&w, &r(3, 4), &mut arena);
        assert!(ans && !fell_back);
        // Threshold equal to the value: the outward nudges widen the
        // enclosure past it, so this exercises the exact fallback.
        let (ans, _) = flat.le_exact(&w, &exact, &mut arena);
        assert!(ans);
        let (ans, _) = flat.le_exact(&w, &r(1, 2), &mut arena);
        assert!(!ans);
    }

    #[test]
    fn pool_flattening_preserves_compile_ids() {
        let mut comp = Compiler::new();
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3])]);
        let g = Cnf::new([cl(&[1, 2]), cl(&[2, 3]), cl(&[4])]);
        let rf = comp.compile(&f);
        let rg = comp.compile(&g);
        let flat = comp.finish_flat();
        assert_eq!(flat.gate_count(), comp.node_count());
        let w = UniformWeight(Rational::one_half());
        let flat_vals = flat.evaluate_all(&w);
        let tree_vals = comp.evaluate_all(&w);
        assert_eq!(flat_vals.value(rf), tree_vals.value(rf));
        assert_eq!(flat_vals.value(rg), tree_vals.value(rg));
    }

    #[test]
    fn batch_kernel_matches_serial_loop_bit_identically() {
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3]), cl(&[3, 4]), cl(&[1, 4])]);
        let flat = Circuit::compile(&f).flatten();
        let weights: Vec<UniformWeight> = (0..=16).map(|k| UniformWeight(r(k, 16))).collect();
        let mut arena = EvalArena::new();
        let batch = flat.eval_batch_exact_with(&weights, &mut arena);
        let serial: Vec<Rational> = weights
            .iter()
            .map(|w| flat.eval_exact_with(w, &mut arena))
            .collect();
        assert_eq!(batch, serial);
    }

    #[test]
    fn batch_intervals_enclose_exact_values() {
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3]), cl(&[3, 4])]);
        let flat = Circuit::compile(&f).flatten();
        let weights: Vec<UniformWeight> = (0..=7).map(|k| UniformWeight(r(k, 7))).collect();
        let mut arena = EvalArena::new();
        let ivs = flat.eval_batch_interval_with(&weights, &mut arena);
        let exact = flat.eval_batch_exact_with(&weights, &mut arena);
        assert_eq!(ivs.len(), exact.len());
        for (iv, x) in ivs.iter().zip(&exact) {
            assert!(iv.contains(x), "{iv:?} misses {x}");
        }
    }

    #[test]
    fn le_exact_batch_matches_serial_le_exact() {
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3])]);
        let flat = Circuit::compile(&f).flatten();
        let weights: Vec<UniformWeight> = (0..=8).map(|k| UniformWeight(r(k, 8))).collect();
        let mut arena = EvalArena::new();
        // One threshold that intervals decide, one that forces fallback
        // (the exact value at w = 1/2 is 5/8).
        for t in [r(3, 4), r(5, 8)] {
            let batch = flat.le_exact_batch(&weights, &t, &mut arena);
            let serial: Vec<(bool, bool)> = weights
                .iter()
                .map(|w| flat.le_exact(w, &t, &mut arena))
                .collect();
            assert_eq!(batch, serial);
        }
    }

    #[test]
    fn evaluate_all_batch_matches_evaluate_all_loop() {
        let mut comp = Compiler::new();
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3])]);
        let g = Cnf::new([cl(&[1, 2]), cl(&[2, 3]), cl(&[4])]);
        let rf = comp.compile(&f);
        let rg = comp.compile(&g);
        let flat = comp.finish_flat();
        let weights: Vec<UniformWeight> = (0..=5).map(|k| UniformWeight(r(k, 5))).collect();
        let batch = flat.evaluate_all_batch(&weights);
        for (vals, w) in batch.iter().zip(&weights) {
            let serial = flat.evaluate_all(w);
            assert_eq!(vals.value(rf), serial.value(rf));
            assert_eq!(vals.value(rg), serial.value(rg));
        }
    }

    #[test]
    fn batch_chunking_is_value_neutral() {
        // A batch wide enough to split into several kernel chunks must
        // still match the serial loop exactly (chunk boundary coverage).
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3])]);
        let flat = Circuit::compile(&f).flatten();
        let chunk = flat.batch_chunk_lanes();
        // Force ≥ 3 chunks by shrinking the circuit? The preset circuit is
        // small, so lanes-per-chunk is large; instead check the arithmetic
        // around an artificial chunk width of 4 via direct slicing.
        assert!(chunk >= 1);
        let weights: Vec<UniformWeight> = (0..=9).map(|k| UniformWeight(r(k, 9))).collect();
        let mut arena = EvalArena::new();
        let whole = flat.eval_batch_exact_with(&weights, &mut arena);
        let mut pieces = Vec::new();
        for part in weights.chunks(4) {
            pieces.extend(flat.eval_batch_exact_with(part, &mut arena));
        }
        assert_eq!(whole, pieces);
    }

    #[test]
    fn flat_batch_matches_serial_and_parallel() {
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3]), cl(&[3, 4]), cl(&[1, 4])]);
        let flat = Circuit::compile(&f).flatten();
        let weights: Vec<UniformWeight> = (0..=8).map(|k| UniformWeight(r(k, 8))).collect();
        let serial = flat.evaluate_batch(&weights);
        let pool = WorkerPool::new(2);
        for workers in [1usize, 2, 3, 16] {
            assert_eq!(serial, flat.evaluate_batch_on(&pool, &weights, workers));
        }
    }
}
