//! Exact weighted model counting (WMC) for monotone CNFs.
//!
//! `wmc(F, w)` computes `Pr(F)` when every variable `v` is independently true
//! with probability `w(v)`. This is the oracle used throughout the paper's
//! reductions: the probability of a ∀CNF query over a TID is the WMC of its
//! lineage under the tuple probabilities.
//!
//! The algorithm is Shannon expansion with two standard optimizations that
//! make it fast on the paper's block databases:
//!
//! 1. **Component decomposition** — variable-disjoint components are
//!    independent, so their probabilities multiply (this is exactly why the
//!    block construction of §3.1 factorizes, Theorem 3.4);
//! 2. **Memoization** — cofactors are cached per canonical CNF.
//!
//! Zero/one-probability variables are eliminated up front, matching the
//! paper's convention that "tuples with probability 1 are always present,
//! probability 0 absent".

use crate::cnf::{Cnf, Var};
use crate::intern::{CnfId, CnfInterner};
use gfomc_arith::Rational;
use std::collections::{BTreeSet, HashMap};

/// Assigns a probability (weight of the positive literal) to each variable.
pub trait WeightFn {
    /// Probability that `v` is true. Must be in `[0, 1]`.
    fn weight(&self, v: Var) -> Rational;
}

impl WeightFn for HashMap<Var, Rational> {
    fn weight(&self, v: Var) -> Rational {
        self.get(&v)
            .unwrap_or_else(|| panic!("no weight for variable {v:?}"))
            .clone()
    }
}

/// A constant weight for every variable (e.g. the all-½ point used
/// throughout §3 of the paper).
pub struct UniformWeight(pub Rational);

impl WeightFn for UniformWeight {
    fn weight(&self, _v: Var) -> Rational {
        self.0.clone()
    }
}

/// Adapts a closure `Var → Rational` into a [`WeightFn`] — handy for
/// weight functions derived on the fly (tuple probabilities, endpoint
/// overrides) without materializing a map.
pub struct WeightsFromFn<F>(pub F);

impl<F: Fn(Var) -> Rational> WeightFn for WeightsFromFn<F> {
    fn weight(&self, v: Var) -> Rational {
        (self.0)(v)
    }
}

/// Ablation switches for the WMC engine. The defaults enable both
/// optimizations; the `bench_wmc` ablation series measures their impact.
#[derive(Clone, Copy, Debug)]
pub struct WmcConfig {
    /// Split variable-disjoint components and multiply their probabilities
    /// (the engine-level counterpart of Theorem 3.4's factorization).
    pub use_components: bool,
    /// Cache cofactor probabilities per canonical CNF.
    pub use_memo: bool,
}

impl Default for WmcConfig {
    fn default() -> Self {
        WmcConfig {
            use_components: true,
            use_memo: true,
        }
    }
}

/// Weighted model counter with a memo cache that persists across queries
/// (sound only while the weight function is unchanged).
///
/// Cofactors are interned once into a shared [`CnfInterner`] and the memo
/// is keyed by the resulting dense [`CnfId`] — one hash of the clause set
/// per distinct cofactor, instead of re-hashing (and cloning) the full
/// formula on every cache probe. The interner can be handed to the circuit
/// compiler ([`crate::circuit::Compiler::with_interner`]) and back, so the
/// legacy and compiled paths share one canonicalization table.
pub struct ModelCounter<'w, W: WeightFn> {
    weights: &'w W,
    interner: CnfInterner,
    cache: HashMap<CnfId, Rational>,
    config: WmcConfig,
    /// Number of Shannon branchings performed (for instrumentation).
    pub branch_count: u64,
}

impl<'w, W: WeightFn> ModelCounter<'w, W> {
    /// Creates a counter over the given weight function.
    pub fn new(weights: &'w W) -> Self {
        Self::with_config(weights, WmcConfig::default())
    }

    /// Creates a counter with explicit ablation switches.
    pub fn with_config(weights: &'w W, config: WmcConfig) -> Self {
        Self::with_interner(weights, config, CnfInterner::new())
    }

    /// Creates a counter reusing an existing intern table (e.g. from a
    /// circuit [`crate::circuit::Compiler`]). The probability memo starts
    /// empty — only canonicalization work is shared, so differing weight
    /// functions stay sound.
    pub fn with_interner(weights: &'w W, config: WmcConfig, interner: CnfInterner) -> Self {
        ModelCounter {
            weights,
            interner,
            cache: HashMap::new(),
            config,
            branch_count: 0,
        }
    }

    /// Consumes the counter, releasing its intern table for reuse.
    pub fn into_interner(self) -> CnfInterner {
        self.interner
    }

    /// Computes `Pr(f)` under the counter's weights.
    pub fn probability(&mut self, f: &Cnf) -> Rational {
        // Eliminate deterministic variables first so that the cache key is a
        // purely probabilistic formula. Restriction never introduces new
        // variables, so one sweep over the support suffices.
        let det: Vec<(Var, bool)> = f
            .vars()
            .into_iter()
            .filter_map(|v| {
                let w = self.weights.weight(v);
                if w.is_zero() {
                    Some((v, false))
                } else if w.is_one() {
                    Some((v, true))
                } else {
                    None
                }
            })
            .collect();
        if det.is_empty() {
            self.prob_rec(f)
        } else {
            self.prob_rec(&f.restrict_all(&det))
        }
    }

    fn prob_rec(&mut self, f: &Cnf) -> Rational {
        if f.is_true() {
            return Rational::one();
        }
        if f.is_false() {
            return Rational::zero();
        }
        let key = if self.config.use_memo {
            let id = self.interner.intern(f);
            if let Some(hit) = self.cache.get(&id) {
                return hit.clone();
            }
            Some(id)
        } else {
            None
        };
        let comps = if self.config.use_components {
            f.components()
        } else {
            vec![f.clone()]
        };
        let result = if comps.len() > 1 {
            let mut acc = Rational::one();
            for c in comps {
                acc = &acc * &self.prob_rec(&c);
                if acc.is_zero() {
                    break;
                }
            }
            acc
        } else {
            // Branch on the most frequent variable to maximize simplification.
            let v = f
                .branching_var()
                .expect("non-constant formula has variables");
            self.branch_count += 1;
            let p = self.weights.weight(v);
            assert!(p.is_probability(), "weight out of [0,1] for {v:?}");
            let hi = self.prob_rec(&f.restrict(v, true));
            let lo = self.prob_rec(&f.restrict(v, false));
            &(&p * &hi) + &(&p.complement() * &lo)
        };
        if let Some(id) = key {
            self.cache.insert(id, result.clone());
        }
        result
    }
}

/// One-shot `Pr(f)` under `weights`.
pub fn wmc<W: WeightFn>(f: &Cnf, weights: &W) -> Rational {
    ModelCounter::new(weights).probability(f)
}

/// Brute-force `Pr(f)` by enumerating all assignments over the support.
/// Exponential; ground truth for tests.
pub fn wmc_brute_force<W: WeightFn>(f: &Cnf, weights: &W) -> Rational {
    let vars: Vec<Var> = f.vars().into_iter().collect();
    assert!(vars.len() <= 24, "brute force limited to 24 variables");
    let mut total = Rational::zero();
    for mask in 0u64..(1u64 << vars.len()) {
        let mut tv = BTreeSet::new();
        let mut weight = Rational::one();
        for (i, &v) in vars.iter().enumerate() {
            let p = weights.weight(v);
            if mask >> i & 1 == 1 {
                tv.insert(v);
                weight = &weight * &p;
            } else {
                weight = &weight * &p.complement();
            }
        }
        if f.eval(&tv) {
            total = &total + &weight;
        }
    }
    total
}

/// Counts satisfying assignments over exactly the variable set `vars`
/// (unweighted #SAT relative to a chosen support).
pub fn count_models(f: &Cnf, vars: &[Var]) -> u64 {
    assert!(vars.len() <= 30, "model counting limited to 30 variables");
    let mut count = 0u64;
    for mask in 0u64..(1u64 << vars.len()) {
        let tv: BTreeSet<Var> = vars
            .iter()
            .enumerate()
            .filter(|&(i, _)| mask >> i & 1 == 1)
            .map(|(_, &v)| v)
            .collect();
        if f.eval(&tv) {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Clause;

    fn cl(vs: &[u32]) -> Clause {
        Clause::new(vs.iter().map(|&i| Var(i)))
    }

    fn half() -> UniformWeight {
        UniformWeight(Rational::one_half())
    }

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ints(n, d)
    }

    #[test]
    fn constants() {
        assert_eq!(wmc(&Cnf::top(), &half()), Rational::one());
        assert_eq!(wmc(&Cnf::bottom(), &half()), Rational::zero());
    }

    #[test]
    fn single_literal() {
        let f = Cnf::literal(Var(1));
        assert_eq!(wmc(&f, &half()), r(1, 2));
        assert_eq!(wmc(&f, &UniformWeight(r(1, 3))), r(1, 3));
    }

    #[test]
    fn disjunction_inclusion_exclusion() {
        // Pr(x ∨ y) = 1 - (1-p)(1-q); at p=q=1/2 this is 3/4.
        let f = Cnf::new([cl(&[1, 2])]);
        assert_eq!(wmc(&f, &half()), r(3, 4));
    }

    #[test]
    fn independent_conjunction() {
        // Pr(x ∧ y) = 1/4.
        let f = Cnf::new([cl(&[1]), cl(&[2])]);
        assert_eq!(wmc(&f, &half()), r(1, 4));
    }

    #[test]
    fn paper_example_intro() {
        // §1.6: Y = (R ∨ S) ∧ (S ∨ T); Pr at all-½ is 5/8.
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3])]);
        assert_eq!(wmc(&f, &half()), r(5, 8));
    }

    #[test]
    fn zero_and_one_weights_eliminate() {
        // R has prob 1, S prob 0: (R∨S)∧(S∨T) = T.
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3])]);
        let mut w = HashMap::new();
        w.insert(Var(1), Rational::one());
        w.insert(Var(2), Rational::zero());
        w.insert(Var(3), r(1, 3));
        assert_eq!(wmc(&f, &w), r(1, 3));
    }

    #[test]
    fn matches_brute_force_on_fixed_formulas() {
        let formulas = [
            Cnf::new([cl(&[1, 2]), cl(&[2, 3]), cl(&[3, 4])]),
            Cnf::new([cl(&[1, 2, 3]), cl(&[2, 4]), cl(&[1, 4])]),
            Cnf::new([cl(&[1]), cl(&[2, 3]), cl(&[4, 5, 6])]),
            Cnf::new([cl(&[1, 2]), cl(&[3, 4]), cl(&[5, 6]), cl(&[1, 6])]),
        ];
        for f in &formulas {
            assert_eq!(wmc(f, &half()), wmc_brute_force(f, &half()), "{f:?}");
            let w = UniformWeight(r(1, 3));
            assert_eq!(wmc(f, &w), wmc_brute_force(f, &w), "{f:?}");
        }
    }

    #[test]
    fn component_decomposition_is_product() {
        let f = Cnf::new([cl(&[1, 2]), cl(&[3, 4])]);
        let a = Cnf::new([cl(&[1, 2])]);
        let b = Cnf::new([cl(&[3, 4])]);
        let w = half();
        assert_eq!(wmc(&f, &w), &wmc(&a, &w) * &wmc(&b, &w));
    }

    #[test]
    fn count_models_pp2cnf() {
        // (x1 ∨ y1): 3 of 4 assignments satisfy.
        let f = Cnf::new([cl(&[1, 2])]);
        assert_eq!(count_models(&f, &[Var(1), Var(2)]), 3);
        // Over a larger support the count scales by 2^extra.
        assert_eq!(count_models(&f, &[Var(1), Var(2), Var(3)]), 6);
    }

    #[test]
    fn counter_reuse_is_consistent() {
        let w = half();
        let mut mc = ModelCounter::new(&w);
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3])]);
        let p1 = mc.probability(&f);
        let p2 = mc.probability(&f);
        assert_eq!(p1, p2);
        assert_eq!(p1, r(5, 8));
    }

    #[test]
    fn ablation_configs_agree() {
        // All four on/off combinations compute the same probability.
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3]), cl(&[4, 5]), cl(&[3, 4])]);
        let w = half();
        let expect = wmc_brute_force(&f, &w);
        for use_components in [false, true] {
            for use_memo in [false, true] {
                let cfg = WmcConfig {
                    use_components,
                    use_memo,
                };
                let mut mc = ModelCounter::with_config(&w, cfg);
                assert_eq!(mc.probability(&f), expect, "{cfg:?}");
            }
        }
    }

    #[test]
    fn components_reduce_branching() {
        // Two disjoint chains: with components the branch count is the sum,
        // without it is multiplicative.
        let clauses: Vec<Clause> = (0..5)
            .map(|i| cl(&[i, i + 1]))
            .chain((10..15).map(|i| cl(&[i, i + 1])))
            .collect();
        let f = Cnf::new(clauses);
        let w = half();
        let mut with = ModelCounter::with_config(
            &w,
            WmcConfig {
                use_components: true,
                use_memo: false,
            },
        );
        let mut without = ModelCounter::with_config(
            &w,
            WmcConfig {
                use_components: false,
                use_memo: false,
            },
        );
        let a = with.probability(&f);
        let b = without.probability(&f);
        assert_eq!(a, b);
        assert!(with.branch_count < without.branch_count);
    }

    #[test]
    fn long_path_formula() {
        // Chain (x0∨x1)(x1∨x2)...(x9∨x10): compare against brute force.
        let clauses: Vec<Clause> = (0..10).map(|i| cl(&[i, i + 1])).collect();
        let f = Cnf::new(clauses);
        assert_eq!(wmc(&f, &half()), wmc_brute_force(&f, &half()));
    }
}
