//! Monotone DNF formulas — the dual view of [`Cnf`] that approximate
//! counting operates on.
//!
//! A monotone DNF is a disjunction of *terms*, each term a conjunction of
//! positive literals. Its role in this workspace is the Karp–Luby bridge:
//! the complement of a monotone CNF `F(x) = ∧_j ∨_{v∈c_j} v` is, by
//! De Morgan, a monotone DNF **in the complemented variables**
//!
//! ```text
//! ¬F(x) = ∨_j ∧_{v∈c_j} ¬x_v  =  D(x̄)   with one term per clause.
//! ```
//!
//! [`Dnf::complement_of`] performs exactly this transliteration. Evaluating
//! `D` under the flipped weights `w̄(v) = 1 − w(v)` therefore yields
//! `Pr(¬F)` under `w` — which is what the Karp–Luby estimator in
//! `gfomc-approx` samples, since DNF union probabilities (unlike CNF
//! probabilities) admit an FPRAS.
//!
//! Terms reuse [`Clause`] as their representation: a `Clause`'s sorted
//! variable set, read *conjunctively*. Canonical form is absorption-minimal
//! (no term contains another), the DNF dual of the CNF subsumption
//! invariant, so syntactic equality again coincides with logical
//! equivalence for minimal monotone formulas.

use crate::cnf::{Clause, Cnf, Var};
use crate::wmc::WeightFn;
use gfomc_arith::Rational;
use std::collections::BTreeSet;
use std::fmt;

/// A monotone DNF: a disjunction of conjunctive terms.
///
/// Invariants after minimization (enforced by all constructors): terms
/// sorted, deduplicated, and absorption-minimal. The formula `false` is the
/// empty term set; `true` is the singleton set of the empty term.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Dnf {
    terms: Vec<Clause>,
}

impl Dnf {
    /// The constant `false` (empty disjunction).
    pub fn bottom() -> Self {
        Dnf { terms: Vec::new() }
    }

    /// The constant `true` (one empty term).
    pub fn top() -> Self {
        Dnf {
            terms: vec![Clause::empty()],
        }
    }

    /// Builds a minimized DNF from terms (each a [`Clause`] read
    /// conjunctively).
    pub fn new(terms: impl IntoIterator<Item = Clause>) -> Self {
        let mut dnf = Dnf {
            terms: terms.into_iter().collect(),
        };
        dnf.minimize();
        dnf
    }

    /// The complement-DNF of a monotone CNF: `¬F(x) = D(x̄)` with one term
    /// per clause of `F`. The transliteration maps `Cnf::top` (no clauses)
    /// to `Dnf::bottom` and `Cnf::bottom` (one empty clause) to `Dnf::top`,
    /// as De Morgan demands.
    ///
    /// The returned DNF is read over the *complemented* variables: a term
    /// holds in a world iff every one of its variables is **false** in the
    /// original CNF's world. Correspondingly, probabilities transfer through
    /// the flipped weights `w̄(v) = 1 − w(v)`:
    /// `Pr_w(¬F) = Pr_w̄(D)` (see [`Dnf::probability_flipped`]).
    pub fn complement_of(f: &Cnf) -> Self {
        // A canonical CNF transliterates to a canonical DNF directly: the
        // clause list is sorted, deduplicated, and subsumption-minimal, and
        // absorption-minimality is the same subset condition. Skipping
        // `Dnf::new` avoids the O(terms²) absorption sweep on exactly the
        // large lineages the sampler exists for.
        Dnf {
            terms: f.clauses().to_vec(),
        }
    }

    /// True iff the formula is the constant `false`.
    pub fn is_false(&self) -> bool {
        self.terms.is_empty()
    }

    /// True iff the formula is the constant `true`
    /// (for monotone DNF: contains the empty term).
    pub fn is_true(&self) -> bool {
        self.terms.first().is_some_and(|t| t.is_empty())
    }

    /// The terms, in canonical order.
    pub fn terms(&self) -> &[Clause] {
        &self.terms
    }

    /// Number of terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True iff there are no terms (same as [`Dnf::is_false`]).
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The set of variables occurring in the formula.
    pub fn vars(&self) -> BTreeSet<Var> {
        self.terms
            .iter()
            .flat_map(|t| t.vars().iter().copied())
            .collect()
    }

    /// Evaluates under a total assignment (variables absent from
    /// `true_vars` are false): true iff some term has all variables true.
    pub fn eval(&self, true_vars: &BTreeSet<Var>) -> bool {
        self.terms
            .iter()
            .any(|t| t.vars().iter().all(|v| true_vars.contains(v)))
    }

    /// The probability of one term under `w`: `∏_{v∈term} w(v)` (terms are
    /// conjunctions of independent positive literals).
    pub fn term_probability<W: WeightFn>(&self, i: usize, w: &W) -> Rational {
        let mut p = Rational::one();
        for &v in self.terms[i].vars() {
            p = &p * &w.weight(v);
            if p.is_zero() {
                break;
            }
        }
        p
    }

    /// The union bound `Σ_i Pr(term_i)` under `w` — an upper bound on
    /// `Pr(D)`, and the Karp–Luby normalizing constant. May exceed 1.
    pub fn union_bound<W: WeightFn>(&self, w: &W) -> Rational {
        let mut s = Rational::zero();
        for i in 0..self.terms.len() {
            s = &s + &self.term_probability(i, w);
        }
        s
    }

    /// `Pr_w(¬F)` for the CNF `F` this DNF complements: evaluates the DNF
    /// under the flipped weights `w̄(v) = 1 − w(v)` by inclusion–exclusion
    /// over terms. Exponential in the number of terms — ground truth for
    /// tests, not a production path.
    pub fn probability_flipped<W: WeightFn>(&self, w: &W) -> Rational {
        let m = self.terms.len();
        assert!(m <= 20, "inclusion-exclusion limited to 20 terms");
        let mut total = Rational::zero();
        for mask in 1u64..(1u64 << m) {
            // Pr(∩_{i∈mask} term_i) = ∏_{v ∈ ∪ terms} (1 − w(v)).
            let union: BTreeSet<Var> = (0..m)
                .filter(|i| mask >> i & 1 == 1)
                .flat_map(|i| self.terms[i].vars().iter().copied())
                .collect();
            let mut p = Rational::one();
            for v in union {
                p = &p * &w.weight(v).complement();
            }
            if mask.count_ones() % 2 == 1 {
                total = &total + &p;
            } else {
                total = &total - &p;
            }
        }
        total
    }

    /// Restores canonical form: sort, dedupe, drop absorbed terms, collapse
    /// to `true` if an empty term is present.
    fn minimize(&mut self) {
        if self.terms.iter().any(|t| t.is_empty()) {
            self.terms = vec![Clause::empty()];
            return;
        }
        self.terms.sort();
        self.terms.dedup();
        // Absorption: a term containing another term is redundant
        // (t ⊆ t' means t' ⇒ t in a conjunction-of-literals reading).
        let mut keep = vec![true; self.terms.len()];
        for i in 0..self.terms.len() {
            if !keep[i] {
                continue;
            }
            for (j, keep_j) in keep.iter_mut().enumerate() {
                if i == j || !*keep_j {
                    continue;
                }
                if self.terms[i].subsumes(&self.terms[j])
                    && (self.terms[i].len() < self.terms[j].len() || i < j)
                {
                    *keep_j = false;
                }
            }
        }
        let mut idx = 0;
        self.terms.retain(|_| {
            let k = keep[idx];
            idx += 1;
            k
        });
    }
}

impl fmt::Debug for Dnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_false() {
            return write!(f, "⊥");
        }
        if self.is_true() {
            return write!(f, "⊤");
        }
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, "∨")?;
            }
            write!(f, "(")?;
            for (k, v) in t.vars().iter().enumerate() {
                if k > 0 {
                    write!(f, "∧")?;
                }
                write!(f, "x{}", v.0)?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wmc::{wmc_brute_force, UniformWeight};
    use std::collections::HashMap;

    fn cl(vs: &[u32]) -> Clause {
        Clause::new(vs.iter().map(|&i| Var(i)))
    }

    #[test]
    fn constants_transliterate() {
        assert!(Dnf::complement_of(&Cnf::top()).is_false());
        assert!(Dnf::complement_of(&Cnf::bottom()).is_true());
        assert!(Dnf::bottom().is_empty());
        assert!(!Dnf::top().is_empty());
    }

    #[test]
    fn absorption_minimizes() {
        // (x1) ∨ (x1∧x2) ∨ (x2∧x3): the superset term is absorbed.
        let d = Dnf::new([cl(&[1]), cl(&[1, 2]), cl(&[2, 3])]);
        assert_eq!(d.terms(), &[cl(&[1]), cl(&[2, 3])]);
    }

    #[test]
    fn complement_of_is_already_canonical() {
        // The direct transliteration must agree with the minimizing
        // constructor — the invariant that lets `complement_of` skip the
        // absorption sweep.
        let f = Cnf::new([cl(&[2, 3]), cl(&[1, 2]), cl(&[1, 2, 3])]);
        let d = Dnf::complement_of(&f);
        assert_eq!(d, Dnf::new(d.terms().iter().cloned()));
    }

    #[test]
    fn complement_eval_is_negation() {
        // F = (x1∨x2)(x2∨x3); D(x̄) must equal ¬F(x) on every world.
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3])]);
        let d = Dnf::complement_of(&f);
        let support: Vec<Var> = f.vars().into_iter().collect();
        for mask in 0u32..(1 << support.len()) {
            let tv: BTreeSet<Var> = support
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask >> i & 1 == 1)
                .map(|(_, &v)| v)
                .collect();
            let flipped: BTreeSet<Var> = support
                .iter()
                .filter(|v| !tv.contains(v))
                .copied()
                .collect();
            assert_eq!(d.eval(&flipped), !f.eval(&tv), "mask {mask}");
        }
    }

    #[test]
    fn probability_flipped_complements_wmc() {
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3]), cl(&[1, 3])]);
        let d = Dnf::complement_of(&f);
        let mut w = HashMap::new();
        w.insert(Var(1), Rational::from_ints(1, 3));
        w.insert(Var(2), Rational::one_half());
        w.insert(Var(3), Rational::from_ints(3, 4));
        assert_eq!(
            d.probability_flipped(&w),
            wmc_brute_force(&f, &w).complement()
        );
    }

    #[test]
    fn union_bound_dominates_probability() {
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3])]);
        let d = Dnf::complement_of(&f);
        let half = UniformWeight(Rational::one_half());
        // Union bound under flipped weights (all ½, self-complementary).
        assert!(d.union_bound(&half) >= d.probability_flipped(&half));
    }

    #[test]
    fn term_probability_multiplies() {
        let d = Dnf::new([cl(&[1, 2, 3])]);
        let w = UniformWeight(Rational::one_half());
        assert_eq!(d.term_probability(0, &w), Rational::from_ints(1, 8));
        assert_eq!(d.union_bound(&w), Rational::from_ints(1, 8));
    }

    #[test]
    fn vars_and_len() {
        let d = Dnf::new([cl(&[1, 2]), cl(&[4])]);
        assert_eq!(d.len(), 2);
        let vs: Vec<u32> = d.vars().into_iter().map(|Var(i)| i).collect();
        assert_eq!(vs, vec![1, 2, 4]);
    }
}
