//! Knowledge compilation: monotone CNF → d-DNNF-style arithmetic circuit.
//!
//! [`wmc`](crate::wmc()) answers `Pr(F, w)` by Shannon expansion — and re-runs the
//! expansion from scratch for every weight function. The paper's block
//! constructions (§3, Theorem 3.4) evaluate the *same* lineage under *many*
//! weight assignments, which is exactly the workload knowledge compilation
//! amortizes: [`Compiler::compile`] runs the expansion **once**, recording
//! its trace as a circuit whose internal nodes are
//!
//! * **products** of variable-disjoint sub-circuits (component
//!   decomposition — decomposable conjunction), and
//! * **decisions** `w(v)·hi + (1 − w(v))·lo` (Shannon splits —
//!   deterministic disjunction),
//!
//! after which `Pr(F, w)` for *any* weight function `w` is a single
//! bottom-up pass, linear in the circuit size, with no hashing, no clause
//! manipulation, and no re-canonicalization. Compilation is
//! weight-independent: the branching order uses [`Cnf::branching_var`], the
//! same heuristic as the legacy counter, so the two back-ends explore the
//! same cofactors and can share one [`CnfInterner`] table.

use crate::cnf::{Cnf, Var};
use crate::intern::{CnfId, CnfInterner};
use crate::wmc::WeightFn;
use gfomc_arith::{Interval, Rational};
use gfomc_pool::WorkerPool;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Index of a node in a [`Circuit`] or [`Compiler`] pool.
///
/// Children always precede parents, so a single forward pass over the pool
/// evaluates every node bottom-up.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

/// One gate of the arithmetic circuit.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Node {
    /// The constant `1` (the formula `⊤`).
    True,
    /// The constant `0` (the formula `⊥`).
    False,
    /// A single positive literal: evaluates to `w(v)`.
    Leaf(Var),
    /// Decomposable conjunction: variable-disjoint children, value is the
    /// product of child values (Theorem 3.4's factorization as a gate).
    Product(Vec<NodeId>),
    /// Shannon split on `var`: `w(var)·hi + (1 − w(var))·lo`. Valid for
    /// every `w(var) ∈ [0, 1]`, including the deterministic endpoints.
    Decision {
        /// The split variable.
        var: Var,
        /// The `var := true` cofactor.
        hi: NodeId,
        /// The `var := false` cofactor.
        lo: NodeId,
    },
}

/// Node id 0: the constant `⊥`.
const FALSE_ID: NodeId = NodeId(0);
/// Node id 1: the constant `⊤`.
const TRUE_ID: NodeId = NodeId(1);

/// Compiles CNFs into a growing multi-rooted circuit pool.
///
/// The pool, the per-cofactor memo, and the [`CnfInterner`] persist across
/// [`Compiler::compile`] calls, so formulas sharing cofactors (e.g. the
/// `Q_αβ` cell family of the Type-II machinery) share sub-circuits. All
/// formulas compiled by one `Compiler` must use a common variable
/// namespace.
#[derive(Clone, Debug)]
pub struct Compiler {
    interner: CnfInterner,
    memo: HashMap<CnfId, NodeId>,
    nodes: Vec<Node>,
}

impl Default for Compiler {
    fn default() -> Self {
        Compiler::new()
    }
}

impl Compiler {
    /// An empty compiler (pool holds only the two constants).
    pub fn new() -> Self {
        Compiler::with_interner(CnfInterner::new())
    }

    /// A compiler reusing an existing intern table — e.g. one recovered
    /// from a [`crate::wmc::ModelCounter`] via
    /// [`crate::wmc::ModelCounter::into_interner`], so that cofactors
    /// canonicalized by the legacy path are not re-hashed here.
    pub fn with_interner(interner: CnfInterner) -> Self {
        Compiler {
            interner,
            memo: HashMap::new(),
            nodes: vec![Node::False, Node::True],
        }
    }

    /// Compiles `f`, returning the id of its root gate. Repeated calls on
    /// the same (or overlapping) formulas hit the memo.
    pub fn compile(&mut self, f: &Cnf) -> NodeId {
        if f.is_true() {
            return TRUE_ID;
        }
        if f.is_false() {
            return FALSE_ID;
        }
        let id = self.interner.intern(f);
        if let Some(&n) = self.memo.get(&id) {
            return n;
        }
        let comps = f.components();
        let node = if comps.len() > 1 {
            let kids: Vec<NodeId> = comps.iter().map(|c| self.compile(c)).collect();
            Node::Product(kids)
        } else {
            let v = f.branching_var().expect("non-constant CNF has variables");
            // A lone unit clause compiles to a leaf: Pr = w(v).
            if f.len() == 1 && f.clauses()[0].len() == 1 {
                Node::Leaf(v)
            } else {
                let hi = self.compile(&f.restrict(v, true));
                let lo = self.compile(&f.restrict(v, false));
                Node::Decision { var: v, hi, lo }
            }
        };
        let n = self.push(node);
        self.memo.insert(id, n);
        n
    }

    fn push(&mut self, node: Node) -> NodeId {
        let n = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        n
    }

    /// The node pool (children precede parents).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Total pool size, including the two constants.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Evaluates **every** pooled gate under `w` in one bottom-up pass.
    ///
    /// This is the batched form for many formulas × one weight function:
    /// after compiling a family of formulas over a shared variable
    /// namespace, a single pass prices all of them, with shared
    /// sub-circuits evaluated once.
    pub fn evaluate_all<W: WeightFn>(&self, w: &W) -> Valuation {
        Valuation {
            values: evaluate_pool(&self.nodes, w),
        }
    }

    /// Extracts the self-contained sub-circuit rooted at `root` (gates are
    /// renumbered; unreachable pool nodes are dropped).
    pub fn extract(&self, root: NodeId) -> Circuit {
        // Iterative post-order DFS to keep child-before-parent ordering.
        let mut renumber: HashMap<NodeId, NodeId> = HashMap::new();
        let mut nodes: Vec<Node> = vec![Node::False, Node::True];
        renumber.insert(FALSE_ID, FALSE_ID);
        renumber.insert(TRUE_ID, TRUE_ID);
        let mut stack = vec![(root, false)];
        while let Some((n, expanded)) = stack.pop() {
            if renumber.contains_key(&n) {
                continue;
            }
            let node = &self.nodes[n.0 as usize];
            if !expanded {
                stack.push((n, true));
                match node {
                    Node::Product(kids) => stack.extend(kids.iter().map(|&k| (k, false))),
                    Node::Decision { hi, lo, .. } => {
                        stack.push((*hi, false));
                        stack.push((*lo, false));
                    }
                    _ => {}
                }
            } else {
                let remapped = match node {
                    Node::Product(kids) => {
                        Node::Product(kids.iter().map(|k| renumber[k]).collect())
                    }
                    Node::Decision { var, hi, lo } => Node::Decision {
                        var: *var,
                        hi: renumber[hi],
                        lo: renumber[lo],
                    },
                    other => other.clone(),
                };
                let new_id = NodeId(nodes.len() as u32);
                nodes.push(remapped);
                renumber.insert(n, new_id);
            }
        }
        Circuit {
            nodes,
            root: renumber[&root],
        }
    }

    /// Consumes the compiler, releasing its intern table for reuse by
    /// another back-end.
    pub fn into_interner(self) -> CnfInterner {
        self.interner
    }
}

/// The values of every pooled gate under one weight function
/// (see [`Compiler::evaluate_all`]).
#[derive(Clone, Debug)]
pub struct Valuation {
    pub(crate) values: Vec<Rational>,
}

impl Valuation {
    /// The value of a gate.
    pub fn value(&self, id: NodeId) -> &Rational {
        &self.values[id.0 as usize]
    }
}

/// A compiled, self-contained arithmetic circuit for one formula.
///
/// Obtained from [`Circuit::compile`] (one-shot) or [`Compiler::extract`]
/// (from a shared pool). Evaluation under any weight function is one
/// bottom-up pass — `Pr(F, w)` in time linear in the circuit size.
#[derive(Clone, Debug)]
pub struct Circuit {
    nodes: Vec<Node>,
    root: NodeId,
}

impl Circuit {
    /// One-shot compilation of a single formula.
    pub fn compile(f: &Cnf) -> Circuit {
        let mut c = Compiler::new();
        let root = c.compile(f);
        Circuit {
            nodes: c.nodes,
            root,
        }
    }

    /// `Pr(F, w)`: evaluates the circuit bottom-up under `w`.
    pub fn evaluate<W: WeightFn>(&self, w: &W) -> Rational {
        let mut arena = EvalArena::new();
        self.evaluate_with(w, &mut arena)
    }

    /// [`Circuit::evaluate`] with a caller-provided values arena, so a
    /// loop over many weight functions reuses one allocation instead of
    /// growing a fresh `Vec<Rational>` per weighting.
    pub fn evaluate_with<W: WeightFn>(&self, w: &W, arena: &mut EvalArena) -> Rational {
        evaluate_pool_into(&self.nodes, w, &mut arena.values);
        arena.values[self.root.0 as usize].clone()
    }

    /// Evaluates under many weight functions — the compile-once /
    /// evaluate-many form. Output order matches input order. One values
    /// arena is reused across the whole batch.
    pub fn evaluate_batch<W: WeightFn>(&self, weights: &[W]) -> Vec<Rational> {
        let mut arena = EvalArena::new();
        weights
            .iter()
            .map(|w| self.evaluate_with(w, &mut arena))
            .collect()
    }

    /// [`Circuit::evaluate_batch`] fanned across `workers` logical workers
    /// of the process-wide shared [`WorkerPool`] (no per-call thread
    /// spawns). Evaluation is exact rational arithmetic, so the output is
    /// **identical** to the serial [`Circuit::evaluate_batch`] for every
    /// worker count.
    pub fn evaluate_batch_threads<W: WeightFn + Sync>(
        &self,
        weights: &[W],
        threads: usize,
    ) -> Vec<Rational> {
        self.evaluate_batch_on(WorkerPool::global(), weights, threads)
    }

    /// [`Circuit::evaluate_batch_threads`] on a caller-provided pool — the
    /// engine routes its batches through its own shared pool.
    ///
    /// Workers claim batch indices from a shared cursor (an idle worker
    /// steals the next pending weighting rather than owning a fixed
    /// slice), each with a worker-local values arena; results are
    /// scattered into their input positions, so the output is identical to
    /// the serial batch for every worker count and pool size.
    pub fn evaluate_batch_on<W: WeightFn + Sync>(
        &self,
        pool: &WorkerPool,
        weights: &[W],
        workers: usize,
    ) -> Vec<Rational> {
        let workers = workers.max(1).min(weights.len().max(1));
        if workers == 1 {
            return self.evaluate_batch(weights);
        }
        let cursor = AtomicUsize::new(0);
        let mut out: Vec<Option<Rational>> = vec![None; weights.len()];
        let slots = Mutex::new(&mut out);
        pool.broadcast(workers, |_| {
            let mut arena = EvalArena::with_capacity(self.nodes.len());
            let mut local: Vec<(usize, Rational)> = Vec::new();
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= weights.len() {
                    break;
                }
                local.push((i, self.evaluate_with(&weights[i], &mut arena)));
            }
            let mut slots = slots.lock().expect("batch output lock");
            for (i, value) in local {
                slots[i] = Some(value);
            }
        });
        out.into_iter()
            .map(|v| v.expect("every batch index evaluated"))
            .collect()
    }

    /// The root gate.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The gates, children before parents.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of gates (including the two constants).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of Shannon-split gates — the compiled analogue of the legacy
    /// counter's `branch_count` instrumentation.
    pub fn decision_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Decision { .. }))
            .count()
    }
}

/// A reusable slab of evaluation buffers shared by the tree and flat
/// evaluators.
///
/// Bottom-up evaluation needs one slot per gate. Allocating those vectors
/// anew for every weight assignment dominated the batched evaluation
/// profile; an arena created once and threaded through
/// [`Circuit::evaluate_with`] / [`crate::flat::FlatCircuit::eval_exact_with`]
/// keeps the capacity across weightings. The slabs:
///
/// * `values` — one exact [`Rational`] per gate (tree and flat exact
///   passes);
/// * `intervals` — one [`Interval`] per gate (the flat interval fast
///   path, plain `Copy` doubles, no heap traffic);
/// * `slot_weights` / `slot_intervals` — weights resolved once per
///   *distinct variable* of a [`crate::flat::FlatCircuit`], so the
///   per-gate loop indexes a dense slice instead of re-querying the
///   weight function at every leaf and decision;
/// * `overlay` — a sparse exact overlay for
///   [`crate::flat::FlatCircuit::eval_exact_at`], re-pricing only the
///   gates a certification actually needs;
/// * `slots` / `cells` — the hybrid machine-word lane of the flat exact
///   pass: per-slot weights with precomputed complements and `Rat64`
///   forms, and one hybrid value per gate (machine words until an op
///   overflows, exact bignum after);
/// * `lane_cells` / `lane_intervals` — the `values[gate][lane]` matrices
///   of the batch kernels ([`crate::flat::FlatCircuit::eval_batch_exact_with`] /
///   [`crate::flat::FlatCircuit::eval_batch_interval_with`]), gate-major
///   so one topological walk prices every weighting of the batch.
#[derive(Clone, Debug, Default)]
pub struct EvalArena {
    pub(crate) values: Vec<Rational>,
    pub(crate) intervals: Vec<Interval>,
    pub(crate) slot_weights: Vec<Rational>,
    pub(crate) slot_intervals: Vec<Interval>,
    pub(crate) overlay: Vec<Option<Rational>>,
    pub(crate) slots: Vec<crate::flat::SlotW>,
    pub(crate) cells: Vec<crate::flat::LaneVal>,
    pub(crate) lane_cells: Vec<crate::flat::LaneVal>,
    pub(crate) lane_intervals: Vec<Interval>,
}

impl EvalArena {
    /// An empty arena; it grows to the pool size on first use.
    pub fn new() -> Self {
        EvalArena::default()
    }

    /// An arena pre-sized for a pool of `nodes` gates.
    pub fn with_capacity(nodes: usize) -> Self {
        EvalArena {
            values: Vec::with_capacity(nodes),
            ..EvalArena::default()
        }
    }
}

/// Bottom-up evaluation of a child-before-parent node pool.
fn evaluate_pool<W: WeightFn>(nodes: &[Node], w: &W) -> Vec<Rational> {
    let mut values = Vec::new();
    evaluate_pool_into(nodes, w, &mut values);
    values
}

/// [`evaluate_pool`] writing into a reused buffer: clears `values` (keeping
/// its capacity) and fills it with one value per gate.
fn evaluate_pool_into<W: WeightFn>(nodes: &[Node], w: &W, values: &mut Vec<Rational>) {
    values.clear();
    values.reserve(nodes.len());
    for node in nodes {
        let val = match node {
            Node::True => Rational::one(),
            Node::False => Rational::zero(),
            Node::Leaf(v) => {
                let p = w.weight(*v);
                assert!(p.is_probability(), "weight out of [0,1] for {v:?}");
                p
            }
            Node::Product(kids) => {
                let mut acc = Rational::one();
                for k in kids {
                    acc = &acc * &values[k.0 as usize];
                    if acc.is_zero() {
                        break;
                    }
                }
                acc
            }
            Node::Decision { var, hi, lo } => {
                let p = w.weight(*var);
                assert!(p.is_probability(), "weight out of [0,1] for {var:?}");
                let hi = &values[hi.0 as usize];
                let lo = &values[lo.0 as usize];
                &(&p * hi) + &(&p.complement() * lo)
            }
        };
        values.push(val);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Clause;
    use crate::wmc::{wmc, wmc_brute_force, UniformWeight};

    fn cl(vs: &[u32]) -> Clause {
        Clause::new(vs.iter().map(|&i| Var(i)))
    }

    fn half() -> UniformWeight {
        UniformWeight(Rational::one_half())
    }

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ints(n, d)
    }

    #[test]
    fn constants_compile_to_constants() {
        assert_eq!(
            Circuit::compile(&Cnf::top()).evaluate(&half()),
            Rational::one()
        );
        assert_eq!(
            Circuit::compile(&Cnf::bottom()).evaluate(&half()),
            Rational::zero()
        );
    }

    #[test]
    fn literal_is_a_leaf() {
        let c = Circuit::compile(&Cnf::literal(Var(3)));
        assert_eq!(c.node_count(), 3);
        assert_eq!(c.evaluate(&UniformWeight(r(1, 3))), r(1, 3));
    }

    #[test]
    fn paper_intro_example() {
        // (R ∨ S)(S ∨ T) at all-½ is 5/8 (§1.6).
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3])]);
        let c = Circuit::compile(&f);
        assert_eq!(c.evaluate(&half()), r(5, 8));
    }

    #[test]
    fn matches_wmc_on_fixed_formulas() {
        let formulas = [
            Cnf::new([cl(&[1, 2]), cl(&[2, 3]), cl(&[3, 4])]),
            Cnf::new([cl(&[1, 2, 3]), cl(&[2, 4]), cl(&[1, 4])]),
            Cnf::new([cl(&[1]), cl(&[2, 3]), cl(&[4, 5, 6])]),
            Cnf::new([cl(&[1, 2]), cl(&[3, 4]), cl(&[5, 6]), cl(&[1, 6])]),
        ];
        for f in &formulas {
            let c = Circuit::compile(f);
            for w in [r(1, 2), r(1, 3), r(3, 4), r(0, 1), r(1, 1)] {
                let w = UniformWeight(w);
                assert_eq!(c.evaluate(&w), wmc_brute_force(f, &w), "{f:?}");
            }
        }
    }

    #[test]
    fn deterministic_weights_are_exact() {
        // Unlike the legacy counter (which pre-eliminates 0/1-weight
        // variables), the circuit handles them arithmetically: the Shannon
        // gate degenerates to the forced branch.
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3])]);
        let c = Circuit::compile(&f);
        let mut w = std::collections::HashMap::new();
        w.insert(Var(1), Rational::one());
        w.insert(Var(2), Rational::zero());
        w.insert(Var(3), r(1, 3));
        assert_eq!(c.evaluate(&w), wmc(&f, &w));
    }

    #[test]
    fn compile_once_evaluate_many() {
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3]), cl(&[3, 4]), cl(&[1, 4])]);
        let c = Circuit::compile(&f);
        let weights: Vec<UniformWeight> = (0..=8).map(|k| UniformWeight(r(k, 8))).collect();
        let batch = c.evaluate_batch(&weights);
        for (w, got) in weights.iter().zip(&batch) {
            assert_eq!(got, &wmc(&f, w));
        }
    }

    #[test]
    fn pooled_batch_matches_serial_batch() {
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3]), cl(&[3, 4]), cl(&[1, 4])]);
        let c = Circuit::compile(&f);
        let weights: Vec<UniformWeight> = (0..=8).map(|k| UniformWeight(r(k, 8))).collect();
        let serial = c.evaluate_batch(&weights);
        let pool = WorkerPool::new(2);
        for workers in [1usize, 2, 3, 16] {
            assert_eq!(serial, c.evaluate_batch_on(&pool, &weights, workers));
            assert_eq!(serial, c.evaluate_batch_threads(&weights, workers));
        }
    }

    #[test]
    fn component_split_compiles_to_product() {
        let f = Cnf::new([cl(&[1, 2]), cl(&[3, 4])]);
        let c = Circuit::compile(&f);
        assert!(matches!(
            c.nodes()[c.root().0 as usize],
            Node::Product(ref kids) if kids.len() == 2
        ));
    }

    #[test]
    fn pool_sharing_across_formulas() {
        // Two formulas sharing a cofactor compile into one pool without
        // duplicating the shared part.
        let mut comp = Compiler::new();
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3])]);
        let g = Cnf::new([cl(&[1, 2]), cl(&[2, 3]), cl(&[4])]);
        let rf = comp.compile(&f);
        let before = comp.node_count();
        let rg = comp.compile(&g);
        // g = f ∧ x4: only the leaf for x4 and the product gate are new.
        assert_eq!(comp.node_count(), before + 2);
        let vals = comp.evaluate_all(&half());
        assert_eq!(vals.value(rf), &r(5, 8));
        assert_eq!(vals.value(rg), &(&r(5, 8) * &r(1, 2)));
    }

    #[test]
    fn extract_is_self_contained() {
        let mut comp = Compiler::new();
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3])]);
        let g = Cnf::new([cl(&[4, 5])]);
        let rf = comp.compile(&f);
        let _rg = comp.compile(&g);
        let circuit = comp.extract(rf);
        // The extracted circuit drops g's gates…
        assert!(circuit.node_count() < comp.node_count());
        // …and still evaluates f correctly.
        assert_eq!(circuit.evaluate(&half()), r(5, 8));
    }

    #[test]
    fn decision_count_matches_structure() {
        let f = Cnf::new([cl(&[1, 2])]);
        let c = Circuit::compile(&f);
        assert_eq!(c.decision_count(), 1);
    }

    #[test]
    fn interner_handoff_between_backends() {
        // A counter's intern table continues serving the compiler.
        let w = half();
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3])]);
        let mut mc = crate::wmc::ModelCounter::new(&w);
        let p = mc.probability(&f);
        let interner = mc.into_interner();
        assert!(!interner.is_empty());
        let mut comp = Compiler::with_interner(interner);
        let root = comp.compile(&f);
        assert_eq!(comp.evaluate_all(&w).value(root), &p);
    }
}
