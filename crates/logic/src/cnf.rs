//! Monotone CNF formulas over integer-indexed Boolean variables.
//!
//! All lineages of ∀CNF queries are monotone (negation-free) CNFs, so this is
//! the workspace's canonical propositional representation. A formula is a set
//! of clauses, each clause a set of positive literals. Canonical form:
//! clauses are sorted and subsumption-minimal, which makes syntactic equality
//! coincide with logical equivalence *at the clause level* (two minimal
//! monotone CNFs are logically equivalent iff they have the same clause set —
//! the classical uniqueness of the prime-implicate form of monotone
//! functions).

use std::collections::BTreeSet;
use std::fmt;

/// A Boolean variable, identified by index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Var(pub u32);

/// A clause: a disjunction of positive literals (sorted, deduplicated).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Clause {
    vars: Vec<Var>,
}

impl Clause {
    /// Builds a clause from an iterator of variables.
    pub fn new(vars: impl IntoIterator<Item = Var>) -> Self {
        let mut vars: Vec<Var> = vars.into_iter().collect();
        vars.sort_unstable();
        vars.dedup();
        Clause { vars }
    }

    /// The empty clause (logical `false`).
    pub fn empty() -> Self {
        Clause { vars: Vec::new() }
    }

    /// True iff this is the empty (unsatisfiable) clause.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// The variables of this clause, sorted.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// True iff the clause contains `v` (binary search).
    pub fn contains(&self, v: Var) -> bool {
        self.vars.binary_search(&v).is_ok()
    }

    /// True iff every literal of `self` appears in `other`
    /// (i.e. `self` subsumes `other`: `self ⊆ other` implies `other` is
    /// redundant in a CNF containing `self`).
    pub fn subsumes(&self, other: &Clause) -> bool {
        if self.vars.len() > other.vars.len() {
            return false;
        }
        self.vars.iter().all(|v| other.contains(*v))
    }

    /// Removes a variable (the `v := false` cofactor of the clause).
    pub fn without(&self, v: Var) -> Clause {
        Clause {
            vars: self.vars.iter().copied().filter(|&w| w != v).collect(),
        }
    }
}

impl fmt::Debug for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.vars.iter().enumerate() {
            if i > 0 {
                write!(f, "∨")?;
            }
            write!(f, "x{}", v.0)?;
        }
        write!(f, ")")
    }
}

/// A monotone CNF: a conjunction of [`Clause`]s.
///
/// Invariants after minimization (enforced by all constructors):
/// clauses sorted, deduplicated, and subsumption-minimal. The formula `true`
/// is the empty clause set; `false` is the singleton set of the empty clause.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Cnf {
    clauses: Vec<Clause>,
}

impl Cnf {
    /// The constant `true`.
    pub fn top() -> Self {
        Cnf {
            clauses: Vec::new(),
        }
    }

    /// The constant `false`.
    pub fn bottom() -> Self {
        Cnf {
            clauses: vec![Clause::empty()],
        }
    }

    /// Builds a minimized CNF from clauses.
    pub fn new(clauses: impl IntoIterator<Item = Clause>) -> Self {
        let mut cnf = Cnf {
            clauses: clauses.into_iter().collect(),
        };
        cnf.minimize();
        cnf
    }

    /// A single-clause formula.
    pub fn of_clause(c: Clause) -> Self {
        Cnf::new([c])
    }

    /// A single positive literal.
    pub fn literal(v: Var) -> Self {
        Cnf::of_clause(Clause::new([v]))
    }

    /// True iff the formula is the constant `true`.
    pub fn is_true(&self) -> bool {
        self.clauses.is_empty()
    }

    /// True iff the formula is the constant `false`
    /// (for monotone CNF: contains the empty clause).
    pub fn is_false(&self) -> bool {
        self.clauses.first().is_some_and(|c| c.is_empty())
    }

    /// The clauses, in canonical order.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// True iff there are no clauses (same as [`Cnf::is_true`]).
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// The set of variables occurring in the formula.
    pub fn vars(&self) -> BTreeSet<Var> {
        self.clauses
            .iter()
            .flat_map(|c| c.vars().iter().copied())
            .collect()
    }

    /// True iff `v` occurs in some clause.
    pub fn mentions(&self, v: Var) -> bool {
        self.clauses.iter().any(|c| c.contains(v))
    }

    /// Restores canonical form: sort, dedupe, drop subsumed clauses,
    /// collapse to `false` if an empty clause is present.
    fn minimize(&mut self) {
        if self.clauses.iter().any(|c| c.is_empty()) {
            self.clauses = vec![Clause::empty()];
            return;
        }
        self.clauses.sort();
        self.clauses.dedup();
        // Remove subsumed clauses (a clause is redundant if a subset of it is
        // also present). Sorting puts shorter-or-equal prefixes first but not
        // strictly by length, so do a quadratic sweep — clause counts here are
        // small (lineages of two-variable queries).
        let mut keep = vec![true; self.clauses.len()];
        for i in 0..self.clauses.len() {
            if !keep[i] {
                continue;
            }
            for (j, keep_j) in keep.iter_mut().enumerate() {
                if i == j || !*keep_j {
                    continue;
                }
                if self.clauses[i].subsumes(&self.clauses[j])
                    && (self.clauses[i].len() < self.clauses[j].len() || i < j)
                {
                    *keep_j = false;
                }
            }
        }
        let mut idx = 0;
        self.clauses.retain(|_| {
            let k = keep[idx];
            idx += 1;
            k
        });
    }

    /// Conjunction of two formulas.
    pub fn and(&self, other: &Cnf) -> Cnf {
        if self.is_false() || other.is_false() {
            return Cnf::bottom();
        }
        Cnf::new(self.clauses.iter().chain(other.clauses.iter()).cloned())
    }

    /// Conjunction of many formulas.
    pub fn and_all(parts: impl IntoIterator<Item = Cnf>) -> Cnf {
        let mut clauses = Vec::new();
        for p in parts {
            if p.is_false() {
                return Cnf::bottom();
            }
            clauses.extend(p.clauses);
        }
        Cnf::new(clauses)
    }

    /// Disjunction (by clause-wise distribution; exponential in general, used
    /// only on small formulas such as per-grounding query clauses).
    pub fn or(&self, other: &Cnf) -> Cnf {
        if self.is_true() || other.is_true() {
            return Cnf::top();
        }
        if self.is_false() {
            return other.clone();
        }
        if other.is_false() {
            return self.clone();
        }
        let mut clauses = Vec::with_capacity(self.clauses.len() * other.clauses.len());
        for c1 in &self.clauses {
            for c2 in &other.clauses {
                clauses.push(Clause::new(
                    c1.vars().iter().chain(c2.vars().iter()).copied(),
                ));
            }
        }
        Cnf::new(clauses)
    }

    /// The cofactor `self[v := value]`.
    pub fn restrict(&self, v: Var, value: bool) -> Cnf {
        let mut clauses = Vec::with_capacity(self.clauses.len());
        for c in &self.clauses {
            if c.contains(v) {
                if value {
                    // Clause satisfied: drop it.
                    continue;
                }
                clauses.push(c.without(v));
            } else {
                clauses.push(c.clone());
            }
        }
        Cnf::new(clauses)
    }

    /// Simultaneous restriction by a partial assignment.
    pub fn restrict_all(&self, assignment: &[(Var, bool)]) -> Cnf {
        let mut cur = self.clone();
        for &(v, b) in assignment {
            cur = cur.restrict(v, b);
        }
        cur
    }

    /// Renames variables via `f` (must be injective on the support to
    /// preserve semantics).
    pub fn rename(&self, mut f: impl FnMut(Var) -> Var) -> Cnf {
        Cnf::new(
            self.clauses
                .iter()
                .map(|c| Clause::new(c.vars().iter().map(|&v| f(v)))),
        )
    }

    /// Evaluates under a total assignment (variables absent from
    /// `true_vars` are false).
    pub fn eval(&self, true_vars: &BTreeSet<Var>) -> bool {
        self.clauses
            .iter()
            .all(|c| c.vars().iter().any(|v| true_vars.contains(v)))
    }

    /// Splits the formula into variable-disjoint connected components
    /// (clauses sharing a variable are in the same component).
    /// `true` has no components; `false` is a single component.
    pub fn components(&self) -> Vec<Cnf> {
        if self.clauses.is_empty() {
            return Vec::new();
        }
        // Union-find over clause indices.
        let n = self.clauses.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, i: usize) -> usize {
            if parent[i] != i {
                let r = find(parent, parent[i]);
                parent[i] = r;
            }
            parent[i]
        }
        let mut owner: std::collections::HashMap<Var, usize> = Default::default();
        for (i, c) in self.clauses.iter().enumerate() {
            for &v in c.vars() {
                match owner.get(&v) {
                    Some(&j) => {
                        let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                        if ri != rj {
                            parent[ri] = rj;
                        }
                    }
                    None => {
                        owner.insert(v, i);
                    }
                }
            }
        }
        let mut groups: std::collections::BTreeMap<usize, Vec<Clause>> = Default::default();
        for (i, c) in self.clauses.iter().enumerate() {
            let r = find(&mut parent, i);
            groups.entry(r).or_default().push(c.clone());
        }
        groups
            .into_values()
            .map(|cs| Cnf { clauses: cs }) // already minimal: a sub-multiset of a minimal set
            .collect()
    }

    /// True iff the formula has at most one connected component
    /// (constants count as connected).
    pub fn is_connected(&self) -> bool {
        self.components().len() <= 1
    }

    /// The preferred Shannon-branching variable: the most frequent one
    /// (ties broken toward the smallest index), or `None` for constants.
    /// Both WMC back-ends branch on this variable so that their cofactor
    /// trees — and hence their interned caches — coincide.
    pub fn branching_var(&self) -> Option<Var> {
        let mut counts: std::collections::HashMap<Var, usize> = Default::default();
        for c in &self.clauses {
            for &v in c.vars() {
                *counts.entry(v).or_insert(0) += 1;
            }
        }
        counts
            .into_iter()
            .max_by_key(|&(Var(i), n)| (n, std::cmp::Reverse(i)))
            .map(|(v, _)| v)
    }
}

impl fmt::Debug for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_true() {
            return write!(f, "⊤");
        }
        if self.is_false() {
            return write!(f, "⊥");
        }
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, "∧")?;
            }
            write!(f, "{c:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Var {
        Var(i)
    }

    fn cl(vs: &[u32]) -> Clause {
        Clause::new(vs.iter().map(|&i| Var(i)))
    }

    #[test]
    fn clause_canonical_order() {
        assert_eq!(cl(&[3, 1, 2, 1]), cl(&[1, 2, 3]));
    }

    #[test]
    fn subsumption() {
        assert!(cl(&[1]).subsumes(&cl(&[1, 2])));
        assert!(!cl(&[1, 3]).subsumes(&cl(&[1, 2])));
        assert!(cl(&[1, 2]).subsumes(&cl(&[1, 2])));
    }

    #[test]
    fn minimize_removes_subsumed() {
        let f = Cnf::new([cl(&[1]), cl(&[1, 2]), cl(&[2, 3])]);
        assert_eq!(f.clauses(), &[cl(&[1]), cl(&[2, 3])]);
    }

    #[test]
    fn constants() {
        assert!(Cnf::top().is_true());
        assert!(Cnf::bottom().is_false());
        assert!(!Cnf::top().is_false());
        let f = Cnf::new([cl(&[1]), Clause::empty()]);
        assert!(f.is_false());
    }

    #[test]
    fn and_or_basic() {
        let a = Cnf::literal(v(1));
        let b = Cnf::literal(v(2));
        let and = a.and(&b);
        assert_eq!(and.clauses(), &[cl(&[1]), cl(&[2])]);
        let or = a.or(&b);
        assert_eq!(or.clauses(), &[cl(&[1, 2])]);
    }

    #[test]
    fn or_distributes() {
        // (x1 ∧ x2) ∨ x3 = (x1∨x3) ∧ (x2∨x3)
        let a = Cnf::new([cl(&[1]), cl(&[2])]);
        let b = Cnf::literal(v(3));
        assert_eq!(a.or(&b).clauses(), &[cl(&[1, 3]), cl(&[2, 3])]);
    }

    #[test]
    fn or_with_constants() {
        let a = Cnf::literal(v(1));
        assert!(a.or(&Cnf::top()).is_true());
        assert_eq!(a.or(&Cnf::bottom()), a);
        assert_eq!(Cnf::bottom().or(&a), a);
    }

    #[test]
    fn restrict_true_and_false() {
        // (x1 ∨ x2) ∧ (x2 ∨ x3)
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3])]);
        assert_eq!(f.restrict(v(2), true), Cnf::top());
        let f0 = f.restrict(v(2), false);
        assert_eq!(f0.clauses(), &[cl(&[1]), cl(&[3])]);
        // restricting the last variable of a unit clause gives false
        let g = Cnf::literal(v(5));
        assert!(g.restrict(v(5), false).is_false());
    }

    #[test]
    fn eval_matches_semantics() {
        let f = Cnf::new([cl(&[1, 2]), cl(&[3])]);
        let mut tv = BTreeSet::new();
        tv.insert(v(1));
        assert!(!f.eval(&tv)); // clause (3) unsatisfied
        tv.insert(v(3));
        assert!(f.eval(&tv));
    }

    #[test]
    fn components_split() {
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3]), cl(&[4, 5])]);
        let comps = f.components();
        assert_eq!(comps.len(), 2);
        assert!(!f.is_connected());
        let g = Cnf::new([cl(&[1, 2]), cl(&[2, 3])]);
        assert!(g.is_connected());
        assert!(Cnf::top().is_connected());
    }

    #[test]
    fn components_preserve_conjunction() {
        let f = Cnf::new([cl(&[1]), cl(&[2]), cl(&[3, 4])]);
        let comps = f.components();
        let rejoined = Cnf::and_all(comps);
        assert_eq!(rejoined, f);
    }

    #[test]
    fn rename_shifts_support() {
        let f = Cnf::new([cl(&[1, 2])]);
        let g = f.rename(|Var(i)| Var(i + 10));
        assert_eq!(g.clauses(), &[cl(&[11, 12])]);
    }

    #[test]
    fn vars_collects_support() {
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 5])]);
        let vs: Vec<u32> = f.vars().into_iter().map(|Var(i)| i).collect();
        assert_eq!(vs, vec![1, 2, 5]);
    }

    #[test]
    fn mentions_checks_occurrence() {
        let f = Cnf::new([cl(&[1, 2])]);
        assert!(f.mentions(v(1)));
        assert!(!f.mentions(v(3)));
    }
}
