//! Stateful priced circuits: incremental re-pricing and derivatives.
//!
//! [`crate::flat::FlatCircuit`] is a *stateless* evaluator: every call
//! prices all gates from a weight function and throws the interior away.
//! That is the right shape for compile-once / evaluate-many batches, but
//! the two workloads the ROADMAP calls out on top of it — tuple weight
//! *updates* and per-tuple *explanation* queries — both want the interior
//! kept around:
//!
//! * **Incremental re-pricing.** A d-DNNF-style circuit is a DAG, so a
//!   change to one variable's weight can only move the values of that
//!   variable's gates and their ancestors. [`PricedCircuit`] persists
//!   one exact hybrid lane ([`Rational`]-backed) *and* one certified
//!   [`Interval`] per gate, plus a reverse topology (parent lists
//!   mirroring the packed `children` vector), and
//!   [`PricedCircuit::update_weight`] re-prices only the dirty cone —
//!   ascending gate order via a min-heap, so every gate is recomputed at
//!   most once per update and only after all its changed children.
//!   Values are **bit-identical** to a fresh full evaluation: each gate
//!   is recomputed with the very kernels of the forward pass (same
//!   hybrid lane ops, same zero short-circuit, same interval clamping),
//!   and propagation stops only where *both* the exact lane and the
//!   interval are unchanged. When the dirty frontier grows past half the
//!   circuit the update abandons the heap and falls back to the plain
//!   full pass — same values, better constant.
//!
//! * **Derivatives.** `Pr(F, w)` is multilinear in the weights, and for
//!   a smooth d-DNNF one upward pass (already persisted) plus one
//!   downward pass yields ∂Pr/∂p_t for *every* distinct variable — the
//!   classic circuit-differentiation trick. [`PricedCircuit::gradients`]
//!   implements the downward pass in exact rational arithmetic:
//!   products distribute their adjoint via prefix/suffix partial
//!   products (zero-exact — no division, so zero-valued children are
//!   handled verbatim), decisions route `d·p` / `d·(1−p)` to their
//!   branches and credit `d·(val(hi) − val(lo))` to their variable.
//!   By multilinearity the result equals the exact finite difference
//!   `(Pr|p+h − Pr|p−h) / 2h` for any `h` — the property suite checks
//!   precisely that, in exact rationals.
//!
//! The engine's sessions (`gfomc-engine`) wrap one [`PricedCircuit`]
//! per open session and layer tuple-name resolution, top-k influence
//! ranking, and what-if bands on top.

use crate::cnf::Var;
use crate::flat::{
    decision_lane, mul_lane, FlatCircuit, LaneVal, Op, ReverseTopology, SlotW, NO_SLOT,
};
use gfomc_arith::{Interval, Rat64, Rational};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

/// What one [`PricedCircuit::update_weight`] call actually did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateStats {
    /// Gates re-priced by this update. `0` for a no-op update (same
    /// weight), the full gate count when the update fell back to a full
    /// pass, and the dirty-cone size otherwise.
    pub repriced: usize,
    /// Whether the dirty frontier exceeded the fallback threshold and
    /// the update finished as a plain full evaluation.
    pub full_pass: bool,
}

/// Exact lane equality: same hybrid tag *and* same value. Distinguishing
/// tags keeps re-priced state bit-identical to a fresh forward pass —
/// a gate that a full pass would hold as a machine word must not be left
/// as an equal-valued bignum (or vice versa) by an incremental update.
fn lane_eq(a: &LaneVal, b: &LaneVal) -> bool {
    match (a, b) {
        (LaneVal::S(x), LaneVal::S(y)) => x == y,
        (LaneVal::B(x), LaneVal::B(y)) => x == y,
        _ => false,
    }
}

/// A [`FlatCircuit`] with its valuation held live: per-gate exact lanes
/// and certified intervals, current per-slot weights, a reverse
/// topology for dirty-path propagation, and a slot→gates index seeding
/// each update. See the module docs for the two workloads this serves.
#[derive(Clone, Debug)]
pub struct PricedCircuit {
    circuit: Arc<FlatCircuit>,
    rev: ReverseTopology,
    /// CSR slot→gates index: gates reading slot `s` (its leaves and
    /// decisions) at `slot_gates[slot_gates_off[s]..slot_gates_off[s+1]]`.
    slot_gates_off: Vec<u32>,
    slot_gates: Vec<u32>,
    /// Distinct-variable → slot (inverse of `FlatCircuit::vars`).
    slot_of: HashMap<Var, u32>,
    /// Current weights, resolved per slot (weight + complement + word forms).
    slots: Vec<SlotW>,
    /// Current weights as outward-rounded intervals, per slot.
    slot_ivs: Vec<Interval>,
    /// The persisted upward pass: one exact hybrid lane per gate.
    cells: Vec<LaneVal>,
    /// The persisted interval pass: one certified enclosure per gate.
    ivs: Vec<Interval>,
    /// Min-heap of dirty gate ids (scratch, kept to reuse the allocation).
    dirty: BinaryHeap<Reverse<u32>>,
    /// Membership mask for `dirty` (a gate is pushed at most once).
    dirty_mark: Vec<bool>,
}

impl PricedCircuit {
    /// Prices `circuit` under `weights` (slot order, one probability per
    /// distinct variable of [`FlatCircuit::vars`]) and persists the full
    /// valuation. Cost: one exact pass + one interval pass + one
    /// reverse-topology build.
    ///
    /// # Panics
    /// If `weights.len()` differs from the distinct-variable count or
    /// any weight is outside `[0, 1]`.
    pub fn new(circuit: Arc<FlatCircuit>, weights: &[Rational]) -> PricedCircuit {
        assert_eq!(
            weights.len(),
            circuit.vars().len(),
            "one weight per distinct variable, in slot order"
        );
        let slots: Vec<SlotW> = weights
            .iter()
            .map(|p| {
                assert!(p.is_probability(), "weight out of [0,1]: {p}");
                SlotW::new(p.clone())
            })
            .collect();
        let slot_ivs: Vec<Interval> = weights.iter().map(Interval::from_probability).collect();
        let mut cells = Vec::new();
        circuit.eval_cells_into(&slots, &mut cells);
        let mut ivs = Vec::new();
        circuit.eval_interval_into(&slot_ivs, &mut ivs);
        let rev = circuit.reverse_topology();
        let n = circuit.gate_count();
        let nslots = circuit.vars().len();
        let mut counts = vec![0u32; nslots];
        for g in 0..n {
            let s = circuit.var_slot[g];
            if s != NO_SLOT {
                counts[s as usize] += 1;
            }
        }
        let mut slot_gates_off = Vec::with_capacity(nslots + 1);
        let mut acc = 0u32;
        for &c in &counts {
            slot_gates_off.push(acc);
            acc += c;
        }
        slot_gates_off.push(acc);
        let mut cursor = slot_gates_off[..nslots].to_vec();
        let mut slot_gates = vec![0u32; acc as usize];
        for g in 0..n {
            let s = circuit.var_slot[g];
            if s != NO_SLOT {
                let at = &mut cursor[s as usize];
                slot_gates[*at as usize] = g as u32;
                *at += 1;
            }
        }
        let slot_of = circuit
            .vars()
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        PricedCircuit {
            rev,
            slot_gates_off,
            slot_gates,
            slot_of,
            slots,
            slot_ivs,
            cells,
            ivs,
            dirty: BinaryHeap::new(),
            dirty_mark: vec![false; n],
            circuit,
        }
    }

    /// The underlying circuit.
    pub fn circuit(&self) -> &Arc<FlatCircuit> {
        &self.circuit
    }

    /// Gate count of the underlying circuit.
    pub fn gate_count(&self) -> usize {
        self.circuit.gate_count()
    }

    /// Distinct variables, in slot order (delegates to the circuit).
    pub fn vars(&self) -> &[Var] {
        self.circuit.vars()
    }

    /// The slot of a distinct variable, if the circuit mentions it.
    pub fn slot_of(&self, v: Var) -> Option<u32> {
        self.slot_of.get(&v).copied()
    }

    /// The current weight of a slot.
    pub fn weight(&self, slot: u32) -> &Rational {
        &self.slots[slot as usize].p
    }

    /// `Pr(F, w)` under the current weights — just a read of the
    /// persisted root lane.
    pub fn value(&self) -> Rational {
        self.cells[self.circuit.root() as usize].to_rational()
    }

    /// The certified enclosure of the root under the current weights.
    pub fn interval(&self) -> Interval {
        self.ivs[self.circuit.root() as usize]
    }

    /// Exact value of an arbitrary gate under the current weights.
    pub fn gate_value(&self, gate: u32) -> Rational {
        self.cells[gate as usize].to_rational()
    }

    /// Re-prices one gate from its children's *persisted* values, with
    /// the exact kernels of the forward passes (same hybrid ops, same
    /// Product zero short-circuit on the exact lane, none on the
    /// interval lane, same unit clamping) — the bit-identity of
    /// incremental updates rests on this being the same arithmetic.
    fn reprice_gate(&self, gi: usize) -> (LaneVal, Interval) {
        let c = &*self.circuit;
        match c.ops[gi] {
            Op::True => (LaneVal::S(Rat64::ONE), Interval::ONE),
            Op::False => (LaneVal::S(Rat64::ZERO), Interval::ZERO),
            Op::Leaf => {
                let s = c.var_slot[gi] as usize;
                (self.slots[s].leaf(), self.slot_ivs[s])
            }
            Op::Product => {
                let mut acc = LaneVal::S(Rat64::ONE);
                for &k in c.kids(gi) {
                    acc = mul_lane(&acc, &self.cells[k as usize]);
                    if acc.is_zero() {
                        break;
                    }
                }
                let mut iv = Interval::ONE;
                for &k in c.kids(gi) {
                    iv = iv.mul(&self.ivs[k as usize]).clamp_unit();
                }
                (acc, iv)
            }
            Op::Decision => {
                let s = &self.slots[c.var_slot[gi] as usize];
                let kids = c.kids(gi);
                let (hi, lo) = (kids[0] as usize, kids[1] as usize);
                let lane = decision_lane(s, &self.cells[hi], &self.cells[lo]);
                let p = &self.slot_ivs[c.var_slot[gi] as usize];
                let iv = p
                    .mul(&self.ivs[hi])
                    .add(&p.one_minus().mul(&self.ivs[lo]))
                    .clamp_unit();
                (lane, iv)
            }
        }
    }

    /// Abandons incrementality: re-prices every gate with the plain full
    /// passes (used when the dirty frontier exceeds the threshold).
    fn reprice_full(&mut self) {
        self.circuit.eval_cells_into(&self.slots, &mut self.cells);
        self.circuit
            .eval_interval_into(&self.slot_ivs, &mut self.ivs);
    }

    /// Sets slot `slot`'s weight to `p` and re-prices the dirty cone.
    ///
    /// Only ancestors of the slot's gates are visited, in ascending gate
    /// id (children strictly before parents, so each gate is recomputed
    /// at most once, after all its changed inputs). A gate whose exact
    /// lane **and** interval both come out unchanged stops propagation —
    /// both are compared because the interval can move when the exact
    /// value does not (a decision whose branches are equal still folds
    /// the new weight into its enclosure). If more than half the circuit
    /// goes dirty the update falls back to a plain full pass. Either
    /// way the persisted state afterwards is bit-identical (exact lanes,
    /// hybrid tags, and intervals) to a fresh [`PricedCircuit::new`]
    /// under the updated weights.
    ///
    /// # Panics
    /// If `slot` is out of range or `p` is outside `[0, 1]`.
    pub fn update_weight(&mut self, slot: u32, p: Rational) -> UpdateStats {
        assert!(p.is_probability(), "weight out of [0,1]: {p}");
        let si = slot as usize;
        if self.slots[si].p == p {
            // Same exact weight ⇒ same interval ⇒ nothing can move.
            return UpdateStats {
                repriced: 0,
                full_pass: false,
            };
        }
        self.slot_ivs[si] = Interval::from_probability(&p);
        self.slots[si] = SlotW::new(p);
        let n = self.circuit.gate_count();
        let threshold = (n / 2).max(1);
        let (lo, hi) = (
            self.slot_gates_off[si] as usize,
            self.slot_gates_off[si + 1] as usize,
        );
        for i in lo..hi {
            let g = self.slot_gates[i] as usize;
            if !self.dirty_mark[g] {
                self.dirty_mark[g] = true;
                self.dirty.push(Reverse(g as u32));
            }
        }
        let mut repriced = 0usize;
        while let Some(Reverse(g)) = self.dirty.pop() {
            let gi = g as usize;
            self.dirty_mark[gi] = false;
            if repriced >= threshold {
                while let Some(Reverse(h)) = self.dirty.pop() {
                    self.dirty_mark[h as usize] = false;
                }
                self.reprice_full();
                return UpdateStats {
                    repriced: n,
                    full_pass: true,
                };
            }
            let (lane, iv) = self.reprice_gate(gi);
            repriced += 1;
            let changed = !lane_eq(&lane, &self.cells[gi]) || iv != self.ivs[gi];
            self.cells[gi] = lane;
            self.ivs[gi] = iv;
            if changed {
                for &par in self.rev.parents(g) {
                    let pi = par as usize;
                    if !self.dirty_mark[pi] {
                        self.dirty_mark[pi] = true;
                        self.dirty.push(Reverse(par));
                    }
                }
            }
        }
        UpdateStats {
            repriced,
            full_pass: false,
        }
    }

    /// The downward derivative pass: `∂Pr/∂p_s` for every slot `s`, in
    /// slot order, from the persisted upward values — one sweep in exact
    /// rational arithmetic (see the module docs for the recurrences).
    /// Gradients can be negative: raising a weight can lower `Pr` when
    /// the variable appears under a decision whose `lo` branch is
    /// heavier.
    pub fn gradients(&self) -> Vec<Rational> {
        let c = &*self.circuit;
        let n = c.gate_count();
        let mut out = vec![Rational::zero(); c.vars().len()];
        if n == 0 {
            return out;
        }
        // Adjoints: d[g] = ∂(root value)/∂(gate g's value).
        let mut d = vec![Rational::zero(); n];
        d[c.root() as usize] = Rational::one();
        let mut suffix: Vec<Rational> = Vec::new();
        for g in (0..n).rev() {
            if d[g].is_zero() {
                continue;
            }
            match c.ops[g] {
                Op::True | Op::False => {}
                Op::Leaf => {
                    let s = c.var_slot[g] as usize;
                    out[s] = &out[s] + &d[g];
                }
                Op::Product => {
                    // ∂P/∂cᵢ = Π_{j≠i} val(cⱼ): prefix × suffix partial
                    // products — no division, so zero children are exact.
                    let kids = c.kids(g);
                    suffix.clear();
                    suffix.resize(kids.len() + 1, Rational::one());
                    for i in (0..kids.len()).rev() {
                        let v = self.cells[kids[i] as usize].to_rational();
                        suffix[i] = &v * &suffix[i + 1];
                    }
                    let mut prefix = Rational::one();
                    for (i, &k) in kids.iter().enumerate() {
                        let partial = &prefix * &suffix[i + 1];
                        if !partial.is_zero() {
                            let term = &d[g] * &partial;
                            let ki = k as usize;
                            d[ki] = &d[ki] + &term;
                        }
                        prefix = &prefix * &self.cells[k as usize].to_rational();
                        if prefix.is_zero() {
                            // Every later partial has this zero prefix.
                            break;
                        }
                    }
                }
                Op::Decision => {
                    let s = c.var_slot[g] as usize;
                    let kids = c.kids(g);
                    let (hi, lo) = (kids[0] as usize, kids[1] as usize);
                    let dh = &d[g] * &self.slots[s].p;
                    let dl = &d[g] * &self.slots[s].pc;
                    d[hi] = &d[hi] + &dh;
                    d[lo] = &d[lo] + &dl;
                    let diff = &self.cells[hi].to_rational() - &self.cells[lo].to_rational();
                    if !diff.is_zero() {
                        let term = &d[g] * &diff;
                        out[s] = &out[s] + &term;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::cnf::{Clause, Cnf};
    use crate::wmc::UniformWeight;

    fn cl(vs: &[u32]) -> Clause {
        Clause::new(vs.iter().map(|&i| Var(i)))
    }

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ints(n, d)
    }

    fn priced(f: &Cnf, w: Rational) -> PricedCircuit {
        let flat = Arc::new(Circuit::compile(f).flatten());
        let weights = vec![w; flat.vars().len()];
        PricedCircuit::new(flat, &weights)
    }

    #[test]
    fn construction_matches_stateless_evaluation() {
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3]), cl(&[3, 4])]);
        let flat = Circuit::compile(&f).flatten();
        let w = UniformWeight(r(1, 3));
        let pc = priced(&f, r(1, 3));
        assert_eq!(pc.value(), flat.eval_exact(&w));
        assert_eq!(pc.interval(), flat.eval_interval(&w));
    }

    #[test]
    fn reverse_topology_mirrors_children() {
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3]), cl(&[1, 3])]);
        let flat = Circuit::compile(&f).flatten();
        let rev = flat.reverse_topology();
        let mut forward_edges = 0usize;
        for g in 0..flat.gate_count() {
            for &k in flat.kids(g) {
                forward_edges += 1;
                assert!(
                    rev.parents(k).contains(&(g as u32)),
                    "edge {g}→{k} missing from reverse topology"
                );
            }
        }
        assert_eq!(rev.edge_count(), forward_edges);
        for g in 0..flat.gate_count() as u32 {
            for &p in rev.parents(g) {
                assert!(flat.kids(p as usize).contains(&g));
            }
        }
    }

    #[test]
    fn update_is_bit_identical_to_fresh_pricing() {
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3]), cl(&[3, 4]), cl(&[1, 4])]);
        let flat = Arc::new(Circuit::compile(&f).flatten());
        let mut weights = vec![r(1, 2); flat.vars().len()];
        let mut pc = PricedCircuit::new(flat.clone(), &weights);
        let stream = [(0u32, r(1, 7)), (2, r(6, 7)), (0, r(1, 7)), (1, r(0, 1))];
        for (slot, p) in stream {
            pc.update_weight(slot, p.clone());
            weights[slot as usize] = p;
            let fresh = PricedCircuit::new(flat.clone(), &weights);
            assert_eq!(pc.value(), fresh.value());
            assert_eq!(pc.interval(), fresh.interval());
            for g in 0..flat.gate_count() as u32 {
                assert_eq!(pc.gate_value(g), fresh.gate_value(g), "gate {g}");
            }
        }
    }

    #[test]
    fn noop_update_reprices_nothing() {
        let mut pc = priced(&Cnf::new([cl(&[1, 2]), cl(&[2, 3])]), r(1, 2));
        let stats = pc.update_weight(0, r(1, 2));
        assert_eq!(
            stats,
            UpdateStats {
                repriced: 0,
                full_pass: false
            }
        );
    }

    #[test]
    fn update_touches_fewer_gates_than_full_pass_on_disjoint_parts() {
        // Two independent clauses: updating a variable of one must not
        // re-price the other's cone.
        let f = Cnf::new([cl(&[1, 2]), cl(&[3, 4])]);
        let mut pc = priced(&f, r(1, 2));
        let slot = pc.slot_of(Var(1)).expect("var 1 present");
        let stats = pc.update_weight(slot, r(1, 3));
        assert!(stats.repriced > 0);
        assert!(
            stats.full_pass || stats.repriced < pc.gate_count(),
            "update re-priced all {} gates without declaring a full pass",
            pc.gate_count()
        );
    }

    #[test]
    fn gradients_match_finite_differences() {
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3]), cl(&[3, 4])]);
        let flat = Arc::new(Circuit::compile(&f).flatten());
        let weights: Vec<Rational> = (0..flat.vars().len())
            .map(|i| r(i as i64 + 1, flat.vars().len() as i64 + 2))
            .collect();
        let pc = PricedCircuit::new(flat.clone(), &weights);
        let grads = pc.gradients();
        let h = r(1, 64);
        for s in 0..weights.len() {
            let mut up = weights.clone();
            up[s] = &up[s] + &h;
            let mut dn = weights.clone();
            dn[s] = &dn[s] - &h;
            let vu = PricedCircuit::new(flat.clone(), &up).value();
            let vd = PricedCircuit::new(flat.clone(), &dn).value();
            let fd = &(&vu - &vd) * &r(32, 1); // ÷ 2h = × 32
            assert_eq!(grads[s], fd, "slot {s}");
        }
    }
}
