//! # gfomc-logic
//!
//! The propositional substrate of the workspace:
//!
//! * [`cnf`] — monotone CNF formulas in canonical (subsumption-minimal) form,
//!   with restriction, renaming, conjunction/disjunction, and decomposition
//!   into variable-disjoint components;
//! * [`dnf`] — monotone DNF, in particular the complement-DNF of a monotone
//!   CNF (De Morgan transliteration) that turns lineage counting into the
//!   DNF-union problem the Karp–Luby estimator (`gfomc-approx`) samples;
//! * [`mod@wmc`] — exact weighted model counting (the `Pr(Q)` oracle of the
//!   paper's Cook reductions), by Shannon expansion with component
//!   decomposition and memoization, plus brute-force ground truth;
//! * [`circuit`] — knowledge compilation of monotone CNFs into d-DNNF-style
//!   arithmetic circuits, for compile-once / evaluate-many workloads;
//! * [`flat`] — the struct-of-arrays evaluation form of those circuits
//!   ([`FlatCircuit`]): dense topologically ordered gates, packed
//!   children, interval-first evaluation with certified exact fallback;
//! * [`priced`] — the stateful layer over [`flat`] ([`PricedCircuit`]):
//!   persisted per-gate values, reverse topology, dirty-path incremental
//!   re-pricing on weight updates, and the downward derivative pass
//!   (∂Pr/∂p per distinct variable in one sweep);
//! * [`intern`] — canonical-CNF interning shared by both WMC back-ends;
//! * [`decompose`] — the disconnection / distance / migrating-variable
//!   analysis of Appendix B.

pub mod circuit;
pub mod cnf;
pub mod decompose;
pub mod dnf;
pub mod flat;
pub mod intern;
pub mod priced;
pub mod wmc;

pub use circuit::{Circuit, Compiler, EvalArena, Node, NodeId, Valuation};
pub use cnf::{Clause, Cnf, Var};
pub use dnf::Dnf;
pub use flat::{
    interval_fallbacks_thread, interval_fallbacks_total, FlatCircuit, Op, ReverseTopology,
};
pub use intern::{CnfId, CnfInterner};
pub use priced::{PricedCircuit, UpdateStats};
pub use wmc::{
    count_models, wmc, wmc_brute_force, ModelCounter, UniformWeight, WeightFn, WeightsFromFn,
    WmcConfig,
};

#[cfg(test)]
mod proptests {
    use super::*;
    use gfomc_arith::Rational;
    use proptest::prelude::*;
    use std::collections::HashMap;

    /// Random monotone CNF over at most 8 variables with at most 6 clauses.
    fn arb_cnf() -> impl Strategy<Value = Cnf> {
        proptest::collection::vec(proptest::collection::btree_set(0u32..8, 1..4), 0..6).prop_map(
            |clauses| {
                Cnf::new(
                    clauses
                        .into_iter()
                        .map(|c| Clause::new(c.into_iter().map(Var))),
                )
            },
        )
    }

    fn arb_weights() -> impl Strategy<Value = HashMap<Var, Rational>> {
        proptest::collection::vec(0i64..=4, 8).prop_map(|ws| {
            ws.into_iter()
                .enumerate()
                .map(|(i, w)| (Var(i as u32), Rational::from_ints(w, 4)))
                .collect()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn wmc_matches_brute_force(f in arb_cnf(), w in arb_weights()) {
            prop_assert_eq!(wmc(&f, &w), wmc_brute_force(&f, &w));
        }

        #[test]
        fn circuit_matches_wmc_and_brute_force(f in arb_cnf(), w in arb_weights()) {
            // The compiled circuit, the Shannon counter, and exhaustive
            // enumeration must agree exactly (Rational equality).
            let c = Circuit::compile(&f);
            let via_circuit = c.evaluate(&w);
            prop_assert_eq!(&via_circuit, &wmc(&f, &w));
            prop_assert_eq!(via_circuit, wmc_brute_force(&f, &w));
        }

        #[test]
        fn circuit_compile_once_many_weights(f in arb_cnf()) {
            // One compilation serves every weight function: spot-check the
            // whole uniform grid k/4, including the deterministic endpoints.
            let c = Circuit::compile(&f);
            for k in 0..=4i64 {
                let w = UniformWeight(Rational::from_ints(k, 4));
                prop_assert_eq!(c.evaluate(&w), wmc(&f, &w));
            }
        }

        #[test]
        fn wmc_uniform_half_matches(f in arb_cnf()) {
            let w = UniformWeight(Rational::one_half());
            prop_assert_eq!(wmc(&f, &w), wmc_brute_force(&f, &w));
        }

        #[test]
        fn restriction_shannon_identity(f in arb_cnf(), v in 0u32..8) {
            // Pr(F) = ½·Pr(F[v:=1]) + ½·Pr(F[v:=0]) at the uniform-½ point.
            let w = UniformWeight(Rational::one_half());
            let v = Var(v);
            let lhs = wmc(&f, &w);
            let hi = wmc(&f.restrict(v, true), &w);
            let lo = wmc(&f.restrict(v, false), &w);
            let half = Rational::one_half();
            prop_assert_eq!(lhs, &(&half * &hi) + &(&half * &lo));
        }

        #[test]
        fn minimization_preserves_semantics(f in arb_cnf(), mask in any::<u16>()) {
            // `Cnf::new` minimized `f`; evaluation must agree with direct
            // clause-by-clause semantics on arbitrary assignments.
            let tv: std::collections::BTreeSet<Var> =
                (0..8).filter(|i| mask >> i & 1 == 1).map(Var).collect();
            let direct = f.clauses().iter().all(|c| c.vars().iter().any(|v| tv.contains(v)));
            prop_assert_eq!(f.eval(&tv), direct);
        }

        #[test]
        fn components_are_independent(f in arb_cnf()) {
            let w = UniformWeight(Rational::one_half());
            let product = f
                .components()
                .into_iter()
                .fold(Rational::one(), |acc, c| &acc * &wmc(&c, &w));
            prop_assert_eq!(wmc(&f, &w), product);
        }

        #[test]
        fn or_and_are_sound(f in arb_cnf(), g in arb_cnf(), mask in any::<u16>()) {
            let tv: std::collections::BTreeSet<Var> =
                (0..8).filter(|i| mask >> i & 1 == 1).map(Var).collect();
            prop_assert_eq!(f.or(&g).eval(&tv), f.eval(&tv) || g.eval(&tv));
            prop_assert_eq!(f.and(&g).eval(&tv), f.eval(&tv) && g.eval(&tv));
        }

        #[test]
        fn restrict_is_sound(f in arb_cnf(), v in 0u32..8, b in any::<bool>(), mask in any::<u16>()) {
            let v = Var(v);
            let mut tv: std::collections::BTreeSet<Var> =
                (0..8).filter(|i| mask >> i & 1 == 1).map(Var).collect();
            // Force the assignment to agree with the restriction.
            if b { tv.insert(v); } else { tv.remove(&v); }
            prop_assert_eq!(f.restrict(v, b).eval(&tv), f.eval(&tv));
        }
    }
}
