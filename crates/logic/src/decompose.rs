//! Connectivity and disconnection analysis for monotone CNFs (Appendix B).
//!
//! The hardness proofs repeatedly reason about whether a Boolean formula
//! *disconnects* two sets of variables (Definition B.2), whether a single
//! variable disconnects them in both cofactors, the clause-distance between
//! variables, and *migrating* variables (Definition B.8). Because minimal
//! monotone CNFs decompose uniquely into variable-disjoint components, all of
//! these are graph computations on the clause–variable incidence graph.

use crate::cnf::{Cnf, Var};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// True iff `f ≡ F₁ ∧ F₂` with disjoint variables such that no variable of
/// `us` shares a component with a variable of `vs` (Definition B.2).
///
/// Variables of `us`/`vs` not occurring in `f` impose no constraint (the
/// paper: "if F does not depend on U it trivially disconnects U, V").
pub fn disconnects(f: &Cnf, us: &BTreeSet<Var>, vs: &BTreeSet<Var>) -> bool {
    if f.is_false() {
        // ⊥ = ⊥ ∧ ⊤ disconnects everything.
        return true;
    }
    for comp in f.components() {
        let cvars = comp.vars();
        let touches_u = us.iter().any(|v| cvars.contains(v));
        let touches_v = vs.iter().any(|v| cvars.contains(v));
        if touches_u && touches_v {
            return false;
        }
    }
    true
}

/// True iff variable `x` disconnects `us` from `vs`: both cofactors
/// `f[x:=0]` and `f[x:=1]` disconnect them (Definition B.2, third bullet).
pub fn var_disconnects(f: &Cnf, x: Var, us: &BTreeSet<Var>, vs: &BTreeSet<Var>) -> bool {
    disconnects(&f.restrict(x, false), us, vs) && disconnects(&f.restrict(x, true), us, vs)
}

/// Clause-distance `d(us, vs)` in `f`: the minimum `k` such that there are
/// clauses `C₀, …, C_k` with `us ∩ Vars(C₀) ≠ ∅`, `vs ∩ Vars(C_k) ≠ ∅`, and
/// consecutive clauses sharing a variable. `None` if no such path exists.
/// A single clause touching both sets has distance 0.
pub fn distance(f: &Cnf, us: &BTreeSet<Var>, vs: &BTreeSet<Var>) -> Option<usize> {
    let clauses = f.clauses();
    if clauses.is_empty() {
        return None;
    }
    // BFS over clauses; adjacency = shared variable.
    let mut var_to_clauses: HashMap<Var, Vec<usize>> = HashMap::new();
    for (i, c) in clauses.iter().enumerate() {
        for &v in c.vars() {
            var_to_clauses.entry(v).or_default().push(i);
        }
    }
    let mut dist: Vec<Option<usize>> = vec![None; clauses.len()];
    let mut queue = VecDeque::new();
    for (i, c) in clauses.iter().enumerate() {
        if c.vars().iter().any(|v| us.contains(v)) {
            dist[i] = Some(0);
            queue.push_back(i);
        }
    }
    let mut best: Option<usize> = None;
    while let Some(i) = queue.pop_front() {
        let d = dist[i].unwrap();
        if clauses[i].vars().iter().any(|v| vs.contains(v)) {
            best = Some(best.map_or(d, |b| b.min(d)));
            // BFS: the first hit is minimal, but continue is harmless; break
            // early since BFS explores in distance order.
            break;
        }
        for &v in clauses[i].vars() {
            for &j in &var_to_clauses[&v] {
                if dist[j].is_none() {
                    dist[j] = Some(d + 1);
                    queue.push_back(j);
                }
            }
        }
    }
    best
}

/// Convenience: distance between two single variables.
pub fn var_distance(f: &Cnf, u: Var, v: Var) -> Option<usize> {
    distance(f, &BTreeSet::from([u]), &BTreeSet::from([v]))
}

/// The ball `B(us, m) = { z | d(us, z) ≤ m }` of Definition preceding
/// Lemma B.6.
pub fn ball(f: &Cnf, us: &BTreeSet<Var>, m: usize) -> BTreeSet<Var> {
    f.vars()
        .into_iter()
        .filter(|&z| distance(f, us, &BTreeSet::from([z])).is_some_and(|d| d <= m))
        .collect()
}

/// True iff `y` is a *migrating* variable w.r.t. `x, us, vs`
/// (Definition B.8): `x` disconnects `us, vs`, but disconnects neither
/// `us ∪ {y}, vs` nor `us, vs ∪ {y}`.
pub fn is_migrating(f: &Cnf, x: Var, y: Var, us: &BTreeSet<Var>, vs: &BTreeSet<Var>) -> bool {
    if !var_disconnects(f, x, us, vs) {
        return false;
    }
    let mut uy = us.clone();
    uy.insert(y);
    let mut vy = vs.clone();
    vy.insert(y);
    !var_disconnects(f, x, &uy, vs) && !var_disconnects(f, x, us, &vy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Clause;

    fn cl(vs: &[u32]) -> Clause {
        Clause::new(vs.iter().map(|&i| Var(i)))
    }

    fn set(vs: &[u32]) -> BTreeSet<Var> {
        vs.iter().map(|&i| Var(i)).collect()
    }

    #[test]
    fn disconnects_product_form() {
        // (x1∨x2) ∧ (x3∨x4) disconnects {x1},{x3}.
        let f = Cnf::new([cl(&[1, 2]), cl(&[3, 4])]);
        assert!(disconnects(&f, &set(&[1]), &set(&[3])));
        assert!(!disconnects(&f, &set(&[1]), &set(&[2])));
    }

    #[test]
    fn disconnects_trivially_when_absent() {
        let f = Cnf::new([cl(&[1, 2])]);
        assert!(disconnects(&f, &set(&[9]), &set(&[1])));
        assert!(disconnects(&Cnf::top(), &set(&[1]), &set(&[2])));
        assert!(disconnects(&Cnf::bottom(), &set(&[1]), &set(&[2])));
    }

    #[test]
    fn var_disconnects_chain_midpoint() {
        // (u ∨ x) ∧ (x ∨ v): setting x to 0 gives u ∧ v (disconnected),
        // setting to 1 gives ⊤.
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3])]);
        assert!(var_disconnects(&f, Var(2), &set(&[1]), &set(&[3])));
        // But u does not disconnect x from v.
        assert!(!var_disconnects(&f, Var(1), &set(&[2]), &set(&[3])));
    }

    #[test]
    fn distance_on_chain() {
        // Clauses: (0,1)(1,2)(2,3)(3,4).
        let f = Cnf::new([cl(&[0, 1]), cl(&[1, 2]), cl(&[2, 3]), cl(&[3, 4])]);
        assert_eq!(var_distance(&f, Var(0), Var(4)), Some(3));
        assert_eq!(var_distance(&f, Var(0), Var(1)), Some(0));
        assert_eq!(var_distance(&f, Var(0), Var(2)), Some(1));
        assert_eq!(var_distance(&f, Var(0), Var(0)), Some(0));
    }

    #[test]
    fn distance_disconnected_is_none() {
        let f = Cnf::new([cl(&[1, 2]), cl(&[3, 4])]);
        assert_eq!(var_distance(&f, Var(1), Var(3)), None);
        assert_eq!(var_distance(&f, Var(1), Var(9)), None);
    }

    #[test]
    fn ball_collects_nearby_vars() {
        let f = Cnf::new([cl(&[0, 1]), cl(&[1, 2]), cl(&[2, 3])]);
        assert_eq!(ball(&f, &set(&[0]), 0), set(&[0, 1]));
        assert_eq!(ball(&f, &set(&[0]), 1), set(&[0, 1, 2]));
        assert_eq!(ball(&f, &set(&[0]), 2), set(&[0, 1, 2, 3]));
    }

    #[test]
    fn example_b10_migration() {
        // Example B.10 from the paper. Variables:
        // U=0, Z0=1, Z1=2, Z2=3, Z3=4, X=5, Y=6, Z4=7, V=8.
        let f = Cnf::new([
            cl(&[0, 1]),       // U ∨ Z0
            cl(&[1, 2, 3, 4]), // Z0 ∨ Z1 ∨ Z2 ∨ Z3   (C1)
            cl(&[4, 5, 6]),    // Z3 ∨ X ∨ Y           (C2)
            cl(&[5, 6, 7]),    // X ∨ Y ∨ Z4           (C3)
            cl(&[5, 2]),       // X ∨ Z1
            cl(&[6, 3]),       // Y ∨ Z2
            cl(&[7, 8]),       // Z4 ∨ V
        ]);
        let u = set(&[0]);
        let v = set(&[8]);
        // X disconnects U, V.
        assert!(var_disconnects(&f, Var(5), &u, &v));
        // Y, Z2, Z3 migrate.
        assert!(is_migrating(&f, Var(5), Var(6), &u, &v));
        assert!(is_migrating(&f, Var(5), Var(3), &u, &v));
        assert!(is_migrating(&f, Var(5), Var(4), &u, &v));
        // Z0 does not migrate (it stays on the left).
        assert!(!is_migrating(&f, Var(5), Var(1), &u, &v));
        // Z4 does not migrate (it stays on the right).
        assert!(!is_migrating(&f, Var(5), Var(7), &u, &v));
    }

    #[test]
    fn corollary_b12_symmetry_on_example() {
        // Migration is symmetric: if X causes Y to migrate and Y also
        // disconnects U,V then Y causes X to migrate (Corollary B.12).
        // Build a symmetric chain where both X and Y disconnect U,V:
        // (U∨X)(X∨Y)(Y∨V).
        let f = Cnf::new([cl(&[0, 1]), cl(&[1, 2]), cl(&[2, 3])]);
        let u = set(&[0]);
        let v = set(&[3]);
        assert!(var_disconnects(&f, Var(1), &u, &v));
        assert!(var_disconnects(&f, Var(2), &u, &v));
        let x_migrates_y = is_migrating(&f, Var(1), Var(2), &u, &v);
        let y_migrates_x = is_migrating(&f, Var(2), Var(1), &u, &v);
        assert_eq!(x_migrates_y, y_migrates_x);
    }
}
