//! Interned canonical CNFs: dense integer ids for cofactor caches.
//!
//! Both WMC back-ends — the Shannon-expansion [`crate::wmc::ModelCounter`]
//! and the knowledge-compilation [`crate::circuit::Compiler`] — memoize per
//! canonical cofactor. Keying those memos by the full [`Cnf`] value hashes
//! the entire clause set on every lookup *and* every insert, and clones the
//! formula into the table. The interner hoists that cost: each distinct
//! canonical CNF is hashed once when first seen and assigned a dense
//! [`CnfId`]; all downstream caches key on the copy-free id. A single
//! interner can be handed from a compiler to a counter (or vice versa) so
//! the two paths share one table instead of re-canonicalizing each other's
//! cofactors.

use crate::cnf::Cnf;
use std::collections::HashMap;
use std::rc::Rc;

/// Dense identifier of an interned canonical CNF.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CnfId(pub u32);

/// An intern table mapping canonical CNFs to dense [`CnfId`]s.
///
/// Formulas are stored behind [`Rc`] so the id → formula direction shares
/// the allocation with the hash-map key instead of cloning twice.
#[derive(Clone, Debug, Default)]
pub struct CnfInterner {
    ids: HashMap<Rc<Cnf>, CnfId>,
    formulas: Vec<Rc<Cnf>>,
}

impl CnfInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `f`, returning its id. Hashes `f` exactly once; clones it
    /// only the first time it is seen.
    pub fn intern(&mut self, f: &Cnf) -> CnfId {
        if let Some(&id) = self.ids.get(f) {
            return id;
        }
        let id = CnfId(self.formulas.len() as u32);
        let shared = Rc::new(f.clone());
        self.formulas.push(Rc::clone(&shared));
        self.ids.insert(shared, id);
        id
    }

    /// Looks up the id of `f` without interning it.
    pub fn lookup(&self, f: &Cnf) -> Option<CnfId> {
        self.ids.get(f).copied()
    }

    /// The formula behind an id.
    pub fn resolve(&self, id: CnfId) -> &Cnf {
        &self.formulas[id.0 as usize]
    }

    /// Number of interned formulas.
    pub fn len(&self) -> usize {
        self.formulas.len()
    }

    /// True iff nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.formulas.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::{Clause, Var};

    fn cl(vs: &[u32]) -> Clause {
        Clause::new(vs.iter().map(|&i| Var(i)))
    }

    #[test]
    fn intern_is_idempotent() {
        let mut it = CnfInterner::new();
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3])]);
        let a = it.intern(&f);
        let b = it.intern(&f);
        assert_eq!(a, b);
        assert_eq!(it.len(), 1);
    }

    #[test]
    fn distinct_formulas_get_distinct_ids() {
        let mut it = CnfInterner::new();
        let a = it.intern(&Cnf::new([cl(&[1])]));
        let b = it.intern(&Cnf::new([cl(&[2])]));
        assert_ne!(a, b);
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn resolve_roundtrips() {
        let mut it = CnfInterner::new();
        let f = Cnf::new([cl(&[1, 2])]);
        let id = it.intern(&f);
        assert_eq!(it.resolve(id), &f);
        assert_eq!(it.lookup(&f), Some(id));
        assert_eq!(it.lookup(&Cnf::top()), None);
    }

    #[test]
    fn canonical_equality_collapses() {
        // Syntactically different inputs with the same canonical form
        // intern to the same id.
        let mut it = CnfInterner::new();
        let a = it.intern(&Cnf::new([cl(&[2, 1]), cl(&[1, 2])]));
        let b = it.intern(&Cnf::new([cl(&[1, 2])]));
        assert_eq!(a, b);
    }
}
