//! Interned canonical CNFs: dense integer ids for cofactor caches.
//!
//! Both WMC back-ends — the Shannon-expansion [`crate::wmc::ModelCounter`]
//! and the knowledge-compilation [`crate::circuit::Compiler`] — memoize per
//! canonical cofactor. Keying those memos by the full [`Cnf`] value hashes
//! the entire clause set on every lookup *and* every insert, and clones the
//! formula into the table. The interner hoists that cost: each distinct
//! canonical CNF is hashed once when first seen and assigned a dense
//! [`CnfId`]; all downstream caches key on the copy-free id. A single
//! interner can be handed from a compiler to a counter (or vice versa) so
//! the two paths share one table instead of re-canonicalizing each other's
//! cofactors.

use crate::cnf::Cnf;
use std::collections::HashMap;
use std::sync::Arc;

/// Dense identifier of an interned canonical CNF.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CnfId(pub u32);

/// An intern table mapping canonical CNFs to dense [`CnfId`]s.
///
/// Formulas are stored behind [`Arc`] so the id → formula direction shares
/// the allocation with the hash-map key instead of cloning twice, and so
/// tables (and caches keyed on their ids) stay `Send` for the parallel
/// evaluation paths.
///
/// Callers whose downstream cache is *bounded* (e.g. the engine's LRU of
/// compiled circuits) can [`CnfInterner::forget`] an id when they evict
/// its entry, releasing the retained formula and recycling the slot —
/// otherwise the table would grow with every distinct formula ever seen,
/// defeating the cache bound.
#[derive(Clone, Debug, Default)]
pub struct CnfInterner {
    ids: HashMap<Arc<Cnf>, CnfId>,
    /// Id → formula; `None` marks a forgotten slot awaiting reuse.
    formulas: Vec<Option<Arc<Cnf>>>,
    /// Forgotten slots available for recycling, so the table's footprint
    /// is bounded by the number of *live* formulas.
    free: Vec<u32>,
}

impl CnfInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `f`, returning its id. Hashes `f` exactly once; clones it
    /// only the first time it is seen. A previously forgotten slot may be
    /// recycled, so a formula interned after a [`CnfInterner::forget`]
    /// can receive a numerically reused id.
    pub fn intern(&mut self, f: &Cnf) -> CnfId {
        if let Some(&id) = self.ids.get(f) {
            return id;
        }
        let shared = Arc::new(f.clone());
        let id = match self.free.pop() {
            Some(slot) => {
                self.formulas[slot as usize] = Some(Arc::clone(&shared));
                CnfId(slot)
            }
            None => {
                let id = CnfId(self.formulas.len() as u32);
                self.formulas.push(Some(Arc::clone(&shared)));
                id
            }
        };
        self.ids.insert(shared, id);
        id
    }

    /// Looks up the id of `f` without interning it.
    pub fn lookup(&self, f: &Cnf) -> Option<CnfId> {
        self.ids.get(f).copied()
    }

    /// The formula behind an id. Panics if the id was forgotten.
    pub fn resolve(&self, id: CnfId) -> &Cnf {
        self.formulas[id.0 as usize]
            .as_deref()
            .expect("resolve of a forgotten CnfId")
    }

    /// Releases the formula behind `id` and recycles the slot: a later
    /// [`CnfInterner::intern`] may hand the same numeric id to a
    /// *different* formula. Callers must therefore purge any external
    /// state keyed by `id` **before** forgetting it, and must forget each
    /// id at most once — a stale second `forget` would release whatever
    /// formula has since been recycled into the slot. (The engine's
    /// circuit cache removes its entry and forgets in one step, so both
    /// conditions hold there.) No-op while the slot is still empty.
    pub fn forget(&mut self, id: CnfId) {
        if let Some(formula) = self.formulas[id.0 as usize].take() {
            self.ids.remove(&formula);
            self.free.push(id.0);
        }
    }

    /// Number of live (not forgotten) interned formulas.
    pub fn len(&self) -> usize {
        self.formulas.len() - self.free.len()
    }

    /// True iff nothing live is interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::{Clause, Var};

    fn cl(vs: &[u32]) -> Clause {
        Clause::new(vs.iter().map(|&i| Var(i)))
    }

    #[test]
    fn intern_is_idempotent() {
        let mut it = CnfInterner::new();
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3])]);
        let a = it.intern(&f);
        let b = it.intern(&f);
        assert_eq!(a, b);
        assert_eq!(it.len(), 1);
    }

    #[test]
    fn distinct_formulas_get_distinct_ids() {
        let mut it = CnfInterner::new();
        let a = it.intern(&Cnf::new([cl(&[1])]));
        let b = it.intern(&Cnf::new([cl(&[2])]));
        assert_ne!(a, b);
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn resolve_roundtrips() {
        let mut it = CnfInterner::new();
        let f = Cnf::new([cl(&[1, 2])]);
        let id = it.intern(&f);
        assert_eq!(it.resolve(id), &f);
        assert_eq!(it.lookup(&f), Some(id));
        assert_eq!(it.lookup(&Cnf::top()), None);
    }

    #[test]
    fn forget_releases_and_recycles() {
        let mut it = CnfInterner::new();
        let f = Cnf::new([cl(&[1, 2])]);
        let g = Cnf::new([cl(&[3])]);
        let h = Cnf::new([cl(&[4, 5])]);
        let fid = it.intern(&f);
        let gid = it.intern(&g);
        it.forget(fid);
        assert_eq!(it.len(), 1);
        assert_eq!(it.lookup(&f), None);
        // g is untouched; a new formula recycles f's slot, so the table
        // footprint stays bounded by the live count.
        assert_eq!(it.resolve(gid), &g);
        let hid = it.intern(&h);
        assert_eq!(hid, fid, "freed slot must be recycled");
        assert_eq!(it.resolve(hid), &h);
        assert_eq!(it.len(), 2);
        // Re-interning the forgotten formula allocates a new slot.
        let fid2 = it.intern(&f);
        assert_ne!(fid2, hid);
        assert_eq!(it.len(), 3);
    }

    #[test]
    fn forget_on_an_empty_slot_is_a_noop() {
        let mut it = CnfInterner::new();
        let f = Cnf::new([cl(&[1])]);
        let fid = it.intern(&f);
        it.forget(fid);
        it.forget(fid); // slot still empty: nothing to release
        assert_eq!(it.len(), 0);
        assert!(it.is_empty());
    }

    #[test]
    fn canonical_equality_collapses() {
        // Syntactically different inputs with the same canonical form
        // intern to the same id.
        let mut it = CnfInterner::new();
        let a = it.intern(&Cnf::new([cl(&[2, 1]), cl(&[1, 2])]));
        let b = it.intern(&Cnf::new([cl(&[1, 2])]));
        assert_eq!(a, b);
    }
}
