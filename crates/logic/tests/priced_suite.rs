//! Property suite for the stateful priced-circuit layer.
//!
//! The contracts under test:
//!
//! * **update ≡ fresh pricing** — after *any* stream of
//!   `update_weight` calls (including repeated updates to the same
//!   slot, reverts to a previous weight, and endpoint weights `0`/`1`),
//!   every persisted gate value and interval is bit-identical to a
//!   `PricedCircuit` constructed from scratch under the final weights;
//! * **no wrong certificates across updates** — whenever the persisted
//!   root interval *proves* a comparison after a stream of updates, the
//!   proven answer agrees with the exact value, including streams
//!   engineered to flip the certificate from `≤ t` to `> t`;
//! * **gradients ≡ central finite difference** — `Pr(F, w)` is
//!   multilinear in the weights, so the downward pass's `∂Pr/∂p_s`
//!   must equal `(Pr|p+h − Pr|p−h)/2h` *exactly* (in rational
//!   arithmetic) for any step `h`, before and after updates.

use gfomc_arith::{Certifies, Integer, Natural, Rational};
use gfomc_logic::{Circuit, Clause, Cnf, PricedCircuit, Var};
use proptest::prelude::*;
use std::sync::Arc;

/// Random monotone CNF over at most 8 variables with at most 6 clauses.
fn arb_cnf() -> impl Strategy<Value = Cnf> {
    proptest::collection::vec(proptest::collection::btree_set(0u32..8, 1..4), 1..6).prop_map(
        |clauses| {
            Cnf::new(
                clauses
                    .into_iter()
                    .map(|c| Clause::new(c.into_iter().map(Var))),
            )
        },
    )
}

/// `1/2^60` — an adversarially tiny probability below the `2^-53` grid.
fn tiny() -> Rational {
    Rational::new(Integer::one(), Integer::from(Natural::one().shl_bits(60)))
}

/// The update-weight palette: grid points, endpoints, a repeating binary
/// fraction, and probabilities within `2^-60` of the endpoints (the
/// weights most likely to flip interval certificates).
fn palette(choice: u8) -> Rational {
    match choice % 8 {
        0 => Rational::from_ints(1, 3),
        1 => tiny(),
        2 => Rational::one() - tiny(),
        3 => Rational::one_half(),
        4 => Rational::from_ints(2, 7),
        5 => Rational::zero(),
        6 => Rational::one(),
        _ => Rational::from_ints(3, 4),
    }
}

fn priced_uniform(f: &Cnf, w: Rational) -> (Arc<gfomc_logic::FlatCircuit>, PricedCircuit) {
    let flat = Arc::new(Circuit::compile(f).flatten());
    let weights = vec![w; flat.vars().len()];
    (flat.clone(), PricedCircuit::new(flat, &weights))
}

/// Asserts full bit identity between a long-lived priced circuit and a
/// fresh one: root value, root interval, and every interior gate.
fn assert_state_identical(live: &PricedCircuit, fresh: &PricedCircuit) {
    assert_eq!(live.value(), fresh.value());
    assert_eq!(live.interval(), fresh.interval());
    for g in 0..live.gate_count() as u32 {
        assert_eq!(live.gate_value(g), fresh.gate_value(g), "gate {g} diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn update_stream_is_bit_identical_to_fresh_pricing(
        f in arb_cnf(),
        stream in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..24),
    ) {
        let (flat, mut pc) = priced_uniform(&f, Rational::one_half());
        prop_assume!(!flat.vars().is_empty());
        let mut weights = vec![Rational::one_half(); flat.vars().len()];
        for (slot_choice, weight_choice) in stream {
            let slot = slot_choice as u32 % flat.vars().len() as u32;
            let p = palette(weight_choice);
            let stats = pc.update_weight(slot, p.clone());
            if weights[slot as usize] == p {
                prop_assert_eq!(stats.repriced, 0, "no-op update must re-price nothing");
            }
            weights[slot as usize] = p;
            let fresh = PricedCircuit::new(flat.clone(), &weights);
            assert_state_identical(&pc, &fresh);
        }
    }

    #[test]
    fn certificates_stay_sound_across_updates(
        f in arb_cnf(),
        stream in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..16),
        tn in 0i64..=4,
    ) {
        let (flat, mut pc) = priced_uniform(&f, Rational::one_half());
        prop_assume!(!flat.vars().is_empty());
        let t = Rational::from_ints(tn, 4);
        for (slot_choice, weight_choice) in stream {
            let slot = slot_choice as u32 % flat.vars().len() as u32;
            pc.update_weight(slot, palette(weight_choice));
            if let Certifies::Proven(le) = pc.interval().proves_le_rational(&t) {
                prop_assert_eq!(le, pc.value() <= t, "wrong certificate after update");
            }
        }
    }

    #[test]
    fn gradients_match_central_finite_difference(
        f in arb_cnf(),
        choices in proptest::collection::vec(1i64..=15, 8),
        hn in 1i64..=3,
    ) {
        let flat = Arc::new(Circuit::compile(&f).flatten());
        // Interior weights k/16 with k ∈ 1..=15 so p ± 1/32 stays in [0,1].
        let weights: Vec<Rational> = flat
            .vars()
            .iter()
            .enumerate()
            .map(|(i, _)| Rational::from_ints(choices[i % choices.len()], 16))
            .collect();
        let pc = PricedCircuit::new(flat.clone(), &weights);
        let grads = pc.gradients();
        prop_assert_eq!(grads.len(), flat.vars().len());
        let h = Rational::from_ints(hn, 96); // ≤ 1/32, keeps p ± h in [0,1]
        let inv_2h = Rational::from_ints(96, 2 * hn); // 1/(2h), exact
        for s in 0..weights.len() {
            let mut up = weights.clone();
            up[s] = &up[s] + &h;
            let mut dn = weights.clone();
            dn[s] = &dn[s] - &h;
            let vu = PricedCircuit::new(flat.clone(), &up).value();
            let vd = PricedCircuit::new(flat.clone(), &dn).value();
            let fd = &(&vu - &vd) * &inv_2h;
            prop_assert_eq!(&grads[s], &fd, "slot {} derivative mismatch", s);
        }
    }

    #[test]
    fn gradients_after_updates_match_fresh_gradients(
        f in arb_cnf(),
        stream in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..12),
    ) {
        let (flat, mut pc) = priced_uniform(&f, Rational::one_half());
        prop_assume!(!flat.vars().is_empty());
        let mut weights = vec![Rational::one_half(); flat.vars().len()];
        for (slot_choice, weight_choice) in stream {
            let slot = slot_choice as u32 % flat.vars().len() as u32;
            let p = palette(weight_choice);
            pc.update_weight(slot, p.clone());
            weights[slot as usize] = p;
        }
        let fresh = PricedCircuit::new(flat.clone(), &weights);
        prop_assert_eq!(pc.gradients(), fresh.gradients());
    }
}

/// Deterministic certificate-flip drill: drive every weight from within
/// `2^-60` of `0` to within `2^-60` of `1` and make sure the persisted
/// interval's verdict against `t = 1/2` actually flips — i.e. the
/// incremental path re-prices intervals, not just exact lanes.
#[test]
fn update_stream_flips_interval_certificate() {
    let f = Cnf::new([Clause::new([Var(1), Var(2)])]);
    let flat = Arc::new(Circuit::compile(&f).flatten());
    let weights = vec![tiny(); flat.vars().len()];
    let mut pc = PricedCircuit::new(flat.clone(), &weights);
    let t = Rational::one_half();
    assert_eq!(
        pc.interval().proves_le_rational(&t),
        Certifies::Proven(true),
        "near-zero weights must certify Pr ≤ 1/2"
    );
    let high = Rational::one() - tiny();
    for slot in 0..flat.vars().len() as u32 {
        pc.update_weight(slot, high.clone());
    }
    assert_eq!(
        pc.interval().proves_le_rational(&t),
        Certifies::Proven(false),
        "near-one weights must certify Pr > 1/2"
    );
    let fresh = PricedCircuit::new(flat, &vec![high; pc.vars().len()]);
    assert_eq!(pc.interval(), fresh.interval());
    assert_eq!(pc.value(), fresh.value());
}

/// Repeated updates to the same slot: revert detection (`repriced == 0`
/// on an identical weight) and bit identity along the whole stream.
#[test]
fn repeated_same_slot_updates() {
    let f = Cnf::new([Clause::new([Var(1), Var(2)]), Clause::new([Var(2), Var(3)])]);
    let flat = Arc::new(Circuit::compile(&f).flatten());
    let mut weights = vec![Rational::one_half(); flat.vars().len()];
    let mut pc = PricedCircuit::new(flat.clone(), &weights);
    let seq = [
        Rational::from_ints(1, 3),
        Rational::from_ints(1, 3), // exact repeat: must be a no-op
        Rational::from_ints(2, 3),
        Rational::one_half(), // revert to the original weight
    ];
    for (i, p) in seq.iter().enumerate() {
        let stats = pc.update_weight(0, p.clone());
        if weights[0] == *p {
            assert_eq!(stats.repriced, 0, "step {i}: identical weight re-priced");
        } else {
            assert!(
                stats.repriced > 0,
                "step {i}: changed weight priced nothing"
            );
        }
        weights[0] = p.clone();
        let fresh = PricedCircuit::new(flat.clone(), &weights);
        assert_eq!(pc.value(), fresh.value(), "step {i}");
        assert_eq!(pc.interval(), fresh.interval(), "step {i}");
    }
}
