//! Property suite for the flat evaluation core.
//!
//! The contracts under test:
//!
//! * **bit identity** — for every circuit and weighting,
//!   `FlatCircuit::eval_exact` ≡ tree `Circuit::evaluate` ≡
//!   `wmc_brute_force` as exact `Rational`s (equality in lowest terms);
//! * **certified enclosure** — the interval fast path always contains the
//!   exact value, including under adversarially tight weights (`1/3`,
//!   `1/2^60`, `1 − 1/2^60`) chosen to sit just off the dyadic grid;
//! * **no wrong certificates** — whenever the interval layer *proves* a
//!   comparison, the proven answer agrees with the exact one; fallback
//!   (`Unknown` → exact re-pricing) always lands on the exact verdict.

use gfomc_arith::{Certifies, Integer, Natural, Rational};
use gfomc_logic::{wmc, wmc_brute_force, Circuit, Clause, Cnf, Compiler, EvalArena, Var};
use proptest::prelude::*;
use std::collections::HashMap;

/// Random monotone CNF over at most 8 variables with at most 6 clauses.
fn arb_cnf() -> impl Strategy<Value = Cnf> {
    proptest::collection::vec(proptest::collection::btree_set(0u32..8, 1..4), 0..6).prop_map(
        |clauses| {
            Cnf::new(
                clauses
                    .into_iter()
                    .map(|c| Clause::new(c.into_iter().map(Var))),
            )
        },
    )
}

/// `1/2^60` — an adversarially tiny probability below the `2^-53` grid.
fn tiny() -> Rational {
    Rational::new(Integer::one(), Integer::from(Natural::one().shl_bits(60)))
}

/// The adversarial weight palette: dyadic-grid points, a repeating binary
/// fraction, and probabilities within `2^-60` of the endpoints.
fn tight_weight(choice: u8) -> Rational {
    match choice % 6 {
        0 => Rational::from_ints(1, 3),
        1 => tiny(),
        2 => Rational::one() - tiny(),
        3 => Rational::one_half(),
        4 => Rational::from_ints(2, 7),
        _ => Rational::from_ints(3, 4),
    }
}

fn arb_weights() -> impl Strategy<Value = HashMap<Var, Rational>> {
    proptest::collection::vec(0i64..=4, 8).prop_map(|ws| {
        ws.into_iter()
            .enumerate()
            .map(|(i, w)| (Var(i as u32), Rational::from_ints(w, 4)))
            .collect()
    })
}

fn arb_tight_weights() -> impl Strategy<Value = HashMap<Var, Rational>> {
    proptest::collection::vec(any::<u8>(), 8).prop_map(|ws| {
        ws.into_iter()
            .enumerate()
            .map(|(i, w)| (Var(i as u32), tight_weight(w)))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn flat_tree_brute_force_bit_identity(f in arb_cnf(), w in arb_weights()) {
        let tree = Circuit::compile(&f);
        let flat = tree.flatten();
        let exact = flat.eval_exact(&w);
        prop_assert_eq!(&exact, &tree.evaluate(&w));
        prop_assert_eq!(&exact, &wmc(&f, &w));
        prop_assert_eq!(exact, wmc_brute_force(&f, &w));
    }

    #[test]
    fn flat_matches_tree_under_tight_weights(f in arb_cnf(), w in arb_tight_weights()) {
        let tree = Circuit::compile(&f);
        let flat = tree.flatten();
        prop_assert_eq!(flat.eval_exact(&w), tree.evaluate(&w));
    }

    #[test]
    fn interval_encloses_exact_under_tight_weights(f in arb_cnf(), w in arb_tight_weights()) {
        let flat = Circuit::compile(&f).flatten();
        let exact = flat.eval_exact(&w);
        let iv = flat.eval_interval(&w);
        prop_assert!(iv.contains(&exact), "[{}, {}] misses {:?}", iv.lo, iv.hi, exact);
    }

    #[test]
    fn interval_never_certifies_a_wrong_comparison(
        f in arb_cnf(),
        w in arb_tight_weights(),
        num in 0i64..=16,
    ) {
        let flat = Circuit::compile(&f).flatten();
        let exact = flat.eval_exact(&w);
        let mut arena = EvalArena::new();
        // Thresholds sweep the unit grid and sit adversarially close to
        // the exact value itself.
        let mut thresholds = vec![Rational::from_ints(num, 16)];
        thresholds.push(exact.clone());
        thresholds.push(&exact + &tiny());
        if exact >= tiny() {
            thresholds.push(&exact - &tiny());
        }
        for t in &thresholds {
            if let Certifies::Proven(ans) = flat.proves_le(&w, t, &mut arena) {
                prop_assert_eq!(ans, &exact <= t, "certified wrong answer vs {:?}", t);
            }
            // The combined fast-path + fallback answer is always exact.
            let (ans, _fell_back) = flat.le_exact(&w, t, &mut arena);
            prop_assert_eq!(ans, &exact <= t);
        }
    }

    #[test]
    fn per_gate_fallback_matches_forward_pass(f in arb_cnf(), w in arb_tight_weights()) {
        let flat = Circuit::compile(&f).flatten();
        let mut arena = EvalArena::new();
        let full = flat.eval_exact_with(&w, &mut arena);
        let mut slots = Vec::new();
        flat.resolve_weights(&w, &mut slots);
        let mut overlay = Vec::new();
        prop_assert_eq!(flat.eval_exact_at(flat.root(), &slots, &mut overlay), full);
    }

    #[test]
    fn pool_flatten_preserves_every_root(f in arb_cnf(), g in arb_cnf(), w in arb_weights()) {
        // Two formulas in one pool: flattening preserves ids, and the flat
        // all-gates pass prices both roots identically to the tree pass.
        let mut comp = Compiler::new();
        let rf = comp.compile(&f);
        let rg = comp.compile(&g);
        let flat = comp.finish_flat();
        prop_assert_eq!(flat.gate_count(), comp.node_count());
        let flat_vals = flat.evaluate_all(&w);
        let tree_vals = comp.evaluate_all(&w);
        prop_assert_eq!(flat_vals.value(rf), tree_vals.value(rf));
        prop_assert_eq!(flat_vals.value(rg), tree_vals.value(rg));
    }
}
