//! Sparse multivariate polynomials over the rationals.
//!
//! Used for the *arithmetization* of Boolean formulas (§1.6 of the paper) and
//! for the determinant identities of Lemmas 1.1/1.2: the small matrix of a
//! lineage is a 2×2 matrix of multilinear polynomials, and its determinant is
//! a polynomial of degree ≤ 2 in each variable.

use gfomc_arith::Rational;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A polynomial variable, identified by index. These indices align with
/// [`gfomc_logic::Var`] when a polynomial arises as an arithmetization.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PVar(pub u32);

/// A monomial: variables with positive exponents, sorted by variable.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Monomial {
    powers: Vec<(PVar, u32)>,
}

impl Monomial {
    /// The empty (constant) monomial.
    pub fn unit() -> Self {
        Monomial::default()
    }

    /// A single variable to the first power.
    pub fn var(v: PVar) -> Self {
        Monomial {
            powers: vec![(v, 1)],
        }
    }

    /// Builds from (variable, exponent) pairs; zero exponents are dropped.
    pub fn new(powers: impl IntoIterator<Item = (PVar, u32)>) -> Self {
        let mut map: BTreeMap<PVar, u32> = BTreeMap::new();
        for (v, e) in powers {
            if e > 0 {
                *map.entry(v).or_insert(0) += e;
            }
        }
        Monomial {
            powers: map.into_iter().collect(),
        }
    }

    /// The (variable, exponent) pairs, sorted by variable.
    pub fn powers(&self) -> &[(PVar, u32)] {
        &self.powers
    }

    /// Exponent of `v` (0 if absent).
    pub fn exponent(&self, v: PVar) -> u32 {
        self.powers
            .binary_search_by_key(&v, |&(w, _)| w)
            .map(|i| self.powers[i].1)
            .unwrap_or(0)
    }

    /// Product of two monomials.
    pub fn mul(&self, other: &Monomial) -> Monomial {
        Monomial::new(self.powers.iter().chain(other.powers.iter()).copied())
    }

    /// Total degree.
    pub fn total_degree(&self) -> u32 {
        self.powers.iter().map(|&(_, e)| e).sum()
    }
}

impl fmt::Debug for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.powers.is_empty() {
            return write!(f, "1");
        }
        for (i, (v, e)) in self.powers.iter().enumerate() {
            if i > 0 {
                write!(f, "·")?;
            }
            if *e == 1 {
                write!(f, "x{}", v.0)?;
            } else {
                write!(f, "x{}^{}", v.0, e)?;
            }
        }
        Ok(())
    }
}

/// A sparse multivariate polynomial with rational coefficients.
///
/// Invariant: no zero coefficients are stored; the zero polynomial has an
/// empty term map. Equality is therefore exact identity of polynomials.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Poly {
    terms: BTreeMap<Monomial, Rational>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly::default()
    }

    /// The constant one.
    pub fn one() -> Self {
        Poly::constant(Rational::one())
    }

    /// A constant polynomial.
    pub fn constant(c: Rational) -> Self {
        let mut terms = BTreeMap::new();
        if !c.is_zero() {
            terms.insert(Monomial::unit(), c);
        }
        Poly { terms }
    }

    /// The polynomial `x_v`.
    pub fn var(v: PVar) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(Monomial::var(v), Rational::one());
        Poly { terms }
    }

    /// Builds from raw (monomial, coefficient) pairs, combining duplicates.
    pub fn from_terms(pairs: impl IntoIterator<Item = (Monomial, Rational)>) -> Self {
        let mut terms: BTreeMap<Monomial, Rational> = BTreeMap::new();
        for (m, c) in pairs {
            let entry = terms.entry(m).or_insert_with(Rational::zero);
            *entry = &*entry + &c;
        }
        terms.retain(|_, c| !c.is_zero());
        Poly { terms }
    }

    /// True iff identically zero.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// True iff a constant polynomial (including zero).
    pub fn is_constant(&self) -> bool {
        self.terms.len() <= 1 && self.terms.keys().all(|m| m.powers().is_empty())
    }

    /// The constant term.
    pub fn constant_term(&self) -> Rational {
        self.terms
            .get(&Monomial::unit())
            .cloned()
            .unwrap_or_else(Rational::zero)
    }

    /// The term map (monomial → coefficient).
    pub fn terms(&self) -> &BTreeMap<Monomial, Rational> {
        &self.terms
    }

    /// The set of variables occurring with nonzero coefficient.
    pub fn vars(&self) -> BTreeSet<PVar> {
        self.terms
            .keys()
            .flat_map(|m| m.powers().iter().map(|&(v, _)| v))
            .collect()
    }

    /// The degree in a specific variable.
    pub fn degree_in(&self, v: PVar) -> u32 {
        self.terms.keys().map(|m| m.exponent(v)).max().unwrap_or(0)
    }

    /// Total degree (0 for the zero polynomial).
    pub fn total_degree(&self) -> u32 {
        self.terms
            .keys()
            .map(|m| m.total_degree())
            .max()
            .unwrap_or(0)
    }

    /// True iff multilinear (every variable has degree ≤ 1).
    pub fn is_multilinear(&self) -> bool {
        self.terms
            .keys()
            .all(|m| m.powers().iter().all(|&(_, e)| e <= 1))
    }

    fn add_poly(&self, other: &Poly) -> Poly {
        Poly::from_terms(
            self.terms
                .iter()
                .chain(other.terms.iter())
                .map(|(m, c)| (m.clone(), c.clone())),
        )
    }

    fn mul_poly(&self, other: &Poly) -> Poly {
        let mut pairs = Vec::with_capacity(self.terms.len() * other.terms.len());
        for (m1, c1) in &self.terms {
            for (m2, c2) in &other.terms {
                pairs.push((m1.mul(m2), c1 * c2));
            }
        }
        Poly::from_terms(pairs)
    }

    /// Scales by a rational constant.
    pub fn scale(&self, c: &Rational) -> Poly {
        if c.is_zero() {
            return Poly::zero();
        }
        Poly {
            terms: self.terms.iter().map(|(m, k)| (m.clone(), k * c)).collect(),
        }
    }

    /// `self ^ exp`.
    pub fn pow(&self, exp: u32) -> Poly {
        let mut acc = Poly::one();
        for _ in 0..exp {
            acc = acc.mul_poly(self);
        }
        acc
    }

    /// Substitutes a rational value for a variable.
    pub fn substitute(&self, v: PVar, value: &Rational) -> Poly {
        let mut pairs = Vec::with_capacity(self.terms.len());
        for (m, c) in &self.terms {
            let e = m.exponent(v);
            if e == 0 {
                pairs.push((m.clone(), c.clone()));
            } else {
                let rest = Monomial::new(m.powers().iter().copied().filter(|&(w, _)| w != v));
                pairs.push((rest, c * &value.pow(e as i32)));
            }
        }
        Poly::from_terms(pairs)
    }

    /// Substitutes several variables at once.
    pub fn substitute_all(&self, assignment: &[(PVar, Rational)]) -> Poly {
        let mut cur = self.clone();
        for (v, val) in assignment {
            cur = cur.substitute(*v, val);
        }
        cur
    }

    /// Identifies variable `from` with variable `to` (the substitution
    /// `x_from := x_to` used when gluing migrating variables, Lemma C.30).
    pub fn identify(&self, from: PVar, to: PVar) -> Poly {
        Poly::from_terms(self.terms.iter().map(|(m, c)| {
            let m2 = Monomial::new(m.powers().iter().map(
                |&(v, e)| {
                    if v == from {
                        (to, e)
                    } else {
                        (v, e)
                    }
                },
            ));
            (m2, c.clone())
        }))
    }

    /// Full evaluation; panics if a variable has no value.
    pub fn eval(&self, values: &BTreeMap<PVar, Rational>) -> Rational {
        let mut acc = Rational::zero();
        for (m, c) in &self.terms {
            let mut t = c.clone();
            for &(v, e) in m.powers() {
                let val = values
                    .get(&v)
                    .unwrap_or_else(|| panic!("no value for {v:?}"));
                t = &t * &val.pow(e as i32);
            }
            acc = &acc + &t;
        }
        acc
    }

    /// Decomposes by a variable: returns `(g, h, k)` with
    /// `self = g·v² + h·v + k` (degree in `v` must be ≤ 2).
    pub fn quadratic_in(&self, v: PVar) -> (Poly, Poly, Poly) {
        assert!(self.degree_in(v) <= 2, "degree > 2 in {v:?}");
        let mut g = Vec::new();
        let mut h = Vec::new();
        let mut k = Vec::new();
        for (m, c) in &self.terms {
            let rest = Monomial::new(m.powers().iter().copied().filter(|&(w, _)| w != v));
            match m.exponent(v) {
                0 => k.push((rest, c.clone())),
                1 => h.push((rest, c.clone())),
                2 => g.push((rest, c.clone())),
                _ => unreachable!(),
            }
        }
        (
            Poly::from_terms(g),
            Poly::from_terms(h),
            Poly::from_terms(k),
        )
    }
}

impl Add<&Poly> for &Poly {
    type Output = Poly;
    fn add(self, rhs: &Poly) -> Poly {
        self.add_poly(rhs)
    }
}
impl Sub<&Poly> for &Poly {
    type Output = Poly;
    fn sub(self, rhs: &Poly) -> Poly {
        self.add_poly(&rhs.neg())
    }
}
impl Mul<&Poly> for &Poly {
    type Output = Poly;
    fn mul(self, rhs: &Poly) -> Poly {
        self.mul_poly(rhs)
    }
}
impl Neg for &Poly {
    type Output = Poly;
    fn neg(self) -> Poly {
        self.scale(&Rational::from(-1i64))
    }
}

impl fmt::Debug for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        for (i, (m, c)) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{c:?}·{m:?}")?;
        }
        Ok(())
    }
}

/// Determinant of a 2×2 matrix of polynomials — the `f_A` of Eq. (28).
pub fn det2(m00: &Poly, m01: &Poly, m10: &Poly, m11: &Poly) -> Poly {
    &(m00 * m11) - &(m01 * m10)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ints(n, d)
    }

    fn x(i: u32) -> Poly {
        Poly::var(PVar(i))
    }

    #[test]
    fn zero_and_constants() {
        assert!(Poly::zero().is_zero());
        assert!(Poly::constant(Rational::zero()).is_zero());
        assert!(Poly::one().is_constant());
        assert_eq!(Poly::one().constant_term(), Rational::one());
    }

    #[test]
    fn ring_ops() {
        // (x0 + x1)^2 = x0^2 + 2 x0 x1 + x1^2.
        let s = &x(0) + &x(1);
        let sq = &s * &s;
        assert_eq!(sq.degree_in(PVar(0)), 2);
        assert_eq!(
            sq.terms().get(&Monomial::new([(PVar(0), 1), (PVar(1), 1)])),
            Some(&r(2, 1))
        );
        assert_eq!(&sq - &sq, Poly::zero());
    }

    #[test]
    fn cancellation_removes_terms() {
        let p = &(&x(0) + &x(1)) - &x(1);
        assert_eq!(p, x(0));
    }

    #[test]
    fn substitute_evaluates_partially() {
        // p = x0·x1 + x1 + 2
        let p = &(&(&x(0) * &x(1)) + &x(1)) + &Poly::constant(r(2, 1));
        let q = p.substitute(PVar(0), &r(3, 1));
        // q = 3 x1 + x1 + 2 = 4 x1 + 2
        let expect = &x(1).scale(&r(4, 1)) + &Poly::constant(r(2, 1));
        assert_eq!(q, expect);
    }

    #[test]
    fn eval_full() {
        let p = &(&x(0) * &x(1)) + &x(2);
        let vals: BTreeMap<PVar, Rational> =
            [(PVar(0), r(1, 2)), (PVar(1), r(1, 3)), (PVar(2), r(1, 4))]
                .into_iter()
                .collect();
        assert_eq!(p.eval(&vals), r(5, 12));
    }

    #[test]
    fn identify_merges_variables() {
        // x0·x1 with x1 := x0 becomes x0².
        let p = &x(0) * &x(1);
        let q = p.identify(PVar(1), PVar(0));
        assert_eq!(q.degree_in(PVar(0)), 2);
        assert!(!q.is_multilinear());
        // 2a - a² example from Lemma C.30's discussion: a + b - ab, b := a.
        let f = &(&x(0) + &x(1)) - &(&x(0) * &x(1));
        let g = f.identify(PVar(1), PVar(0));
        let expect = &x(0).scale(&r(2, 1)) - &(&x(0) * &x(0));
        assert_eq!(g, expect);
    }

    #[test]
    fn quadratic_decomposition() {
        // p = (x1+1)·x0² + x2·x0 + 5
        let p = &(&(&(&x(1) + &Poly::one()) * &x(0)) * &x(0))
            + &(&(&x(2) * &x(0)) + &Poly::constant(r(5, 1)));
        let (g, h, k) = p.quadratic_in(PVar(0));
        assert_eq!(g, &x(1) + &Poly::one());
        assert_eq!(h, x(2));
        assert_eq!(k, Poly::constant(r(5, 1)));
        // Reassembling gives p back.
        let back = &(&(&g * &x(0)) * &x(0)) + &(&(&h * &x(0)) + &k);
        assert_eq!(back, p);
    }

    #[test]
    fn det2_antisymmetric_example() {
        // det [[x0, x1], [x1, x0]] = x0² - x1².
        let d = det2(&x(0), &x(1), &x(1), &x(0));
        let expect = &(&x(0) * &x(0)) - &(&x(1) * &x(1));
        assert_eq!(d, expect);
    }

    #[test]
    fn det2_rank_one_vanishes() {
        // Rank-1 matrix [[f·h, f·k], [g·h, g·k]] has zero determinant
        // (this is the (1) ⇒ (2) direction of Lemma 1.2).
        let (f, g, h, k) = (x(0), x(1), x(2), x(3));
        let d = det2(&(&f * &h), &(&f * &k), &(&g * &h), &(&g * &k));
        assert!(d.is_zero());
    }

    #[test]
    fn multilinearity_check() {
        assert!((&x(0) * &x(1)).is_multilinear());
        assert!(!(&x(0) * &x(0)).is_multilinear());
    }

    #[test]
    fn degree_queries() {
        let p = &(&x(0) * &x(0)) + &(&x(1) * &x(2));
        assert_eq!(p.degree_in(PVar(0)), 2);
        assert_eq!(p.degree_in(PVar(1)), 1);
        assert_eq!(p.degree_in(PVar(9)), 0);
        assert_eq!(p.total_degree(), 2);
        assert_eq!(Poly::zero().total_degree(), 0);
    }
}
