//! Arithmetization of Boolean formulas (§1.6 of the paper).
//!
//! The *arithmetization* of a Boolean function `Y` is the unique multilinear
//! polynomial `y` agreeing with `Y` on `{0,1}ⁿ`; equivalently, `y` is the
//! probability `Pr(Y)` as a polynomial in the variable probabilities. For
//! example the lineage `Y = (R ∨ S) ∧ (S ∨ T)` has arithmetization
//! `y(r,s,t) = rt + s − rst`.
//!
//! Computed by Shannon expansion with component decomposition (components
//! multiply) and memoization — the symbolic twin of the WMC engine.

use crate::poly::{PVar, Poly};
use gfomc_arith::Rational;
use gfomc_logic::{Cnf, Var};
use std::collections::HashMap;

/// Computes the arithmetization of a monotone CNF. Variable `Var(i)` of the
/// formula becomes polynomial variable `PVar(i)`.
pub fn arithmetize(f: &Cnf) -> Poly {
    let mut memo = HashMap::new();
    arith_rec(f, &mut memo)
}

fn arith_rec(f: &Cnf, memo: &mut HashMap<Cnf, Poly>) -> Poly {
    if f.is_true() {
        return Poly::one();
    }
    if f.is_false() {
        return Poly::zero();
    }
    if let Some(hit) = memo.get(f) {
        return hit.clone();
    }
    let comps = f.components();
    let result = if comps.len() > 1 {
        let mut acc = Poly::one();
        for c in comps {
            acc = &acc * &arith_rec(&c, memo);
        }
        acc
    } else {
        // Shannon expansion on the most frequent variable.
        let v = f
            .vars()
            .into_iter()
            .max_by_key(|&v| f.clauses().iter().filter(|c| c.contains(v)).count())
            .expect("non-constant formula");
        let x = Poly::var(PVar(v.0));
        let one_minus_x = &Poly::one() - &x;
        let hi = arith_rec(&f.restrict(v, true), memo);
        let lo = arith_rec(&f.restrict(v, false), memo);
        &(&x * &hi) + &(&one_minus_x * &lo)
    };
    memo.insert(f.clone(), result.clone());
    result
}

/// Evaluates the arithmetization at a weight assignment — by definition this
/// equals `Pr(f)`, giving an independent cross-check of the WMC engine.
pub fn probability_via_arithmetization(f: &Cnf, weights: &HashMap<Var, Rational>) -> Rational {
    let poly = arithmetize(f);
    let values = weights
        .iter()
        .map(|(v, w)| (PVar(v.0), w.clone()))
        .collect();
    poly.eval(&values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfomc_logic::{wmc, Clause, UniformWeight};

    fn cl(vs: &[u32]) -> Clause {
        Clause::new(vs.iter().map(|&i| Var(i)))
    }

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ints(n, d)
    }

    #[test]
    fn constants() {
        assert_eq!(arithmetize(&Cnf::top()), Poly::one());
        assert_eq!(arithmetize(&Cnf::bottom()), Poly::zero());
    }

    #[test]
    fn single_variable() {
        let f = Cnf::literal(Var(3));
        assert_eq!(arithmetize(&f), Poly::var(PVar(3)));
    }

    #[test]
    fn paper_intro_example() {
        // Y = (R ∨ S) ∧ (S ∨ T) with R=x0, S=x1, T=x2:
        // y = rt + s − rst.
        let f = Cnf::new([cl(&[0, 1]), cl(&[1, 2])]);
        let y = arithmetize(&f);
        let (r_, s, t) = (Poly::var(PVar(0)), Poly::var(PVar(1)), Poly::var(PVar(2)));
        let expect = &(&(&r_ * &t) + &s) - &(&(&r_ * &s) * &t);
        assert_eq!(y, expect);
        // And Pr at all-½ is 5/8 as in the paper.
        let vals = [(PVar(0), r(1, 2)), (PVar(1), r(1, 2)), (PVar(2), r(1, 2))]
            .into_iter()
            .collect();
        assert_eq!(y.eval(&vals), r(5, 8));
    }

    #[test]
    fn always_multilinear() {
        let f = Cnf::new([cl(&[0, 1, 2]), cl(&[1, 3]), cl(&[2, 3])]);
        assert!(arithmetize(&f).is_multilinear());
    }

    #[test]
    fn agrees_with_wmc_at_uniform_point() {
        let formulas = [
            Cnf::new([cl(&[0, 1]), cl(&[1, 2]), cl(&[2, 3])]),
            Cnf::new([cl(&[0]), cl(&[1, 2])]),
            Cnf::new([cl(&[0, 1, 2, 3])]),
        ];
        for f in &formulas {
            let w = UniformWeight(r(1, 3));
            let vals = f.vars().into_iter().map(|v| (PVar(v.0), r(1, 3))).collect();
            assert_eq!(arithmetize(f).eval(&vals), wmc(f, &w), "{f:?}");
        }
    }

    #[test]
    fn boolean_points_agree_with_eval() {
        let f = Cnf::new([cl(&[0, 1]), cl(&[1, 2])]);
        let y = arithmetize(&f);
        for mask in 0u32..8 {
            let tv: std::collections::BTreeSet<Var> =
                (0..3).filter(|i| mask >> i & 1 == 1).map(Var).collect();
            let vals = (0..3)
                .map(|i| {
                    (
                        PVar(i),
                        if mask >> i & 1 == 1 {
                            Rational::one()
                        } else {
                            Rational::zero()
                        },
                    )
                })
                .collect();
            let expected = if f.eval(&tv) {
                Rational::one()
            } else {
                Rational::zero()
            };
            assert_eq!(y.eval(&vals), expected);
        }
    }

    #[test]
    fn disconnected_formula_factorizes() {
        // (x0 ∨ x1) ∧ (x2 ∨ x3): arithmetization is a product.
        let f = Cnf::new([cl(&[0, 1]), cl(&[2, 3])]);
        let y = arithmetize(&f);
        let a = arithmetize(&Cnf::new([cl(&[0, 1])]));
        let b = arithmetize(&Cnf::new([cl(&[2, 3])]));
        assert_eq!(y, &a * &b);
    }
}
