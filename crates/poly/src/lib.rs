//! # gfomc-poly
//!
//! Sparse multivariate polynomials over exact rationals, and the
//! arithmetization of Boolean functions (§1.6 of Kenig & Suciu, PODS 2021):
//!
//! * [`Poly`] / [`Monomial`] / [`PVar`] — the polynomial ring `Q[x₁, x₂, …]`
//!   with substitution, variable identification, and quadratic decomposition
//!   `f = g·v² + h·v + k` (the shape used by Lemma 1.1);
//! * [`arithmetize`] — the multilinear polynomial agreeing with a monotone
//!   CNF on `{0,1}ⁿ`, i.e. `Pr(F)` as a polynomial in tuple probabilities;
//! * [`det2`] — determinants of 2×2 polynomial matrices (the `f_A` of
//!   Lemma 1.2 / Eq. (28)).

pub mod arithmetization;
pub mod poly;

pub use arithmetization::{arithmetize, probability_via_arithmetization};
pub use poly::{det2, Monomial, PVar, Poly};

#[cfg(test)]
mod proptests {
    use super::*;
    use gfomc_arith::Rational;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    fn arb_poly() -> impl Strategy<Value = Poly> {
        proptest::collection::vec(
            (
                proptest::collection::btree_map(0u32..4, 1u32..3, 0..3),
                -5i64..=5,
            ),
            0..6,
        )
        .prop_map(|terms| {
            Poly::from_terms(terms.into_iter().map(|(m, c)| {
                (
                    Monomial::new(m.into_iter().map(|(v, e)| (PVar(v), e))),
                    Rational::from(c),
                )
            }))
        })
    }

    fn arb_point() -> impl Strategy<Value = BTreeMap<PVar, Rational>> {
        proptest::collection::vec((-4i64..=4, 1i64..4), 4).prop_map(|vals| {
            vals.into_iter()
                .enumerate()
                .map(|(i, (n, d))| (PVar(i as u32), Rational::from_ints(n, d)))
                .collect()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ring_laws(a in arb_poly(), b in arb_poly(), c in arb_poly()) {
            prop_assert_eq!(&a + &b, &b + &a);
            prop_assert_eq!(&a * &b, &b * &a);
            prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
            prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
            prop_assert_eq!(&a - &a, Poly::zero());
        }

        #[test]
        fn eval_is_homomorphism(a in arb_poly(), b in arb_poly(), pt in arb_point()) {
            prop_assert_eq!((&a + &b).eval(&pt), &a.eval(&pt) + &b.eval(&pt));
            prop_assert_eq!((&a * &b).eval(&pt), &a.eval(&pt) * &b.eval(&pt));
        }

        #[test]
        fn substitute_then_eval(a in arb_poly(), pt in arb_point()) {
            // Substituting x0 by its point value and evaluating the rest
            // equals a full evaluation.
            let v0 = pt.get(&PVar(0)).unwrap().clone();
            let partial = a.substitute(PVar(0), &v0);
            prop_assert_eq!(partial.eval(&pt), a.eval(&pt));
        }

        #[test]
        fn quadratic_decomposition_reassembles(a in arb_poly()) {
            let v = PVar(0);
            if a.degree_in(v) <= 2 {
                let (g, h, k) = a.quadratic_in(v);
                let x = Poly::var(v);
                let back = &(&(&g * &x) * &x) + &(&(&h * &x) + &k);
                prop_assert_eq!(back, a);
            }
        }

        #[test]
        fn identify_matches_eval(a in arb_poly(), pt in arb_point()) {
            // Identifying x1 := x0 then evaluating equals evaluating with
            // x1 set to x0's value.
            let ident = a.identify(PVar(1), PVar(0));
            let mut pt2 = pt.clone();
            pt2.insert(PVar(1), pt[&PVar(0)].clone());
            prop_assert_eq!(ident.eval(&pt), a.eval(&pt2));
        }
    }

    mod arithmetization_props {
        use super::*;
        use gfomc_logic::{wmc, Clause, Cnf, Var};
        use std::collections::HashMap;

        fn arb_cnf() -> impl Strategy<Value = Cnf> {
            proptest::collection::vec(proptest::collection::btree_set(0u32..6, 1..4), 0..5)
                .prop_map(|clauses| {
                    Cnf::new(
                        clauses
                            .into_iter()
                            .map(|c| Clause::new(c.into_iter().map(Var))),
                    )
                })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn arithmetization_equals_wmc(f in arb_cnf(), ws in proptest::collection::vec(0i64..=3, 6)) {
                let weights: HashMap<Var, Rational> = ws
                    .iter()
                    .enumerate()
                    .map(|(i, &w)| (Var(i as u32), Rational::from_ints(w, 3)))
                    .collect();
                let direct = wmc(&f, &weights);
                let via_poly = probability_via_arithmetization(&f, &weights);
                prop_assert_eq!(direct, via_poly);
            }

            #[test]
            fn arithmetization_multilinear(f in arb_cnf()) {
                prop_assert!(arithmetize(&f).is_multilinear());
            }
        }
    }
}
