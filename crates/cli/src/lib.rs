//! # gfomc-cli
//!
//! Command-line client for the gfomc service. Ten subcommands:
//!
//! * `submit` — POST an [`EvalRequest`] body to `/eval` and print the
//!   [`Routed`] response text;
//! * `session` — POST a [`SessionRequest`] body to `/session` verbatim
//!   and print the [`SessionResponse`] text (or the server's typed error
//!   line on a non-200);
//! * `update` — compose a one-shot session from an [`EvalRequest`] spec
//!   (stdin or `--file`) plus `<tuple> <n/d>` argument pairs: open,
//!   apply every update, read the value, close. Runs with the `check`
//!   bit-identity discipline against an in-process replay;
//! * `explain` — same composition, but the op is `explain top <k>`:
//!   rank the k most influential tuples by |∂Pr/∂p| after opening;
//! * `status` / `routes` / `cache` — print the matching GET endpoint's
//!   counters verbatim;
//! * `metrics` — print `/metrics` (Prometheus text exposition of the
//!   engine registry) verbatim;
//! * `slow` — print `/slow` (the slow-query ring buffer's traces)
//!   verbatim;
//! * `check` — submit a body over the wire **and** route the same request
//!   through a direct in-process [`Engine`], then assert the two answers
//!   are bit-identical. Bodies whose first line is a `session` header go
//!   to `/session` and are replayed through [`Engine::session_request`]
//!   (with the server-assigned session id normalized — ids encode
//!   allocation order, not content); everything else goes to `/eval` as
//!   before. This is the end-to-end determinism drill the CI smoke job
//!   runs: if the wire format, the server, or the engine ever disagree
//!   byte-for-byte, `check` exits non-zero.
//!
//! The library entry point [`run`] takes its arguments, an input-body
//! source, and an output sink explicitly, so the test suite can drive
//! every subcommand without a subprocess; the binary is a thin wrapper.

use gfomc_engine::{Engine, EvalRequest, Routed, SessionRequest, SessionResponse};
use gfomc_serve::Client;
use std::io::{self, Read, Write};

/// Exit code vocabulary: success.
pub const EXIT_OK: i32 = 0;
/// Exit code vocabulary: usage or transport failure.
pub const EXIT_USAGE: i32 = 1;
/// Exit code vocabulary: the server answered with a non-200 status.
pub const EXIT_SERVER: i32 = 2;
/// Exit code vocabulary: `check` found a wire/direct answer mismatch.
pub const EXIT_MISMATCH: i32 = 3;

const USAGE: &str =
    "usage: gfomc-cli <submit|session|update|explain|status|routes|cache|metrics|slow|check> \
                     [--addr HOST:PORT] [--file PATH]\n\
                     submit/session/check read the request body from --file or stdin;\n\
                     update <tuple> <n/d> [<tuple> <n/d> ...] and explain <k> read an\n\
                     EvalRequest spec the same way and compose a one-shot session";

/// Where a request body comes from: `--file PATH`, or the caller's stdin
/// closure (the binary reads real stdin; tests inject a string).
fn request_body(
    file: &Option<String>,
    stdin: &mut dyn FnMut() -> io::Result<String>,
) -> io::Result<String> {
    match file {
        Some(path) => std::fs::read_to_string(path),
        None => stdin(),
    }
}

/// Runs one CLI invocation. `args` excludes the program name; `stdin`
/// supplies the request body when no `--file` is given; all output
/// (results and errors) goes to `out`. Returns the process exit code.
pub fn run(
    args: &[String],
    stdin: &mut dyn FnMut() -> io::Result<String>,
    out: &mut dyn Write,
) -> i32 {
    match run_inner(args, stdin, out) {
        Ok(code) => code,
        Err(e) => {
            let _ = writeln!(out, "gfomc-cli: {e}");
            EXIT_USAGE
        }
    }
}

fn run_inner(
    args: &[String],
    stdin: &mut dyn FnMut() -> io::Result<String>,
    out: &mut dyn Write,
) -> io::Result<i32> {
    let Some(command) = args.first() else {
        writeln!(out, "{USAGE}")?;
        return Ok(EXIT_USAGE);
    };
    let mut addr = "127.0.0.1:7070".to_string();
    let mut file: Option<String> = None;
    let mut operands: Vec<String> = Vec::new();
    let mut rest = args[1..].iter();
    while let Some(flag) = rest.next() {
        match flag.as_str() {
            "--addr" => match rest.next() {
                Some(v) => addr = v.clone(),
                None => {
                    writeln!(out, "gfomc-cli: --addr needs a value")?;
                    return Ok(EXIT_USAGE);
                }
            },
            "--file" => match rest.next() {
                Some(v) => file = Some(v.clone()),
                None => {
                    writeln!(out, "gfomc-cli: --file needs a value")?;
                    return Ok(EXIT_USAGE);
                }
            },
            other if other.starts_with("--") => {
                writeln!(out, "gfomc-cli: unknown flag '{other}'\n{USAGE}")?;
                return Ok(EXIT_USAGE);
            }
            operand => operands.push(operand.to_string()),
        }
    }
    let client = Client::new(addr);
    match command.as_str() {
        "submit" => {
            let body = request_body(&file, stdin)?;
            submit(&client, &body, out)
        }
        "session" => {
            let body = request_body(&file, stdin)?;
            session_submit(&client, &body, out)
        }
        "update" => {
            if operands.is_empty() || !operands.len().is_multiple_of(2) {
                writeln!(out, "gfomc-cli: update needs <tuple> <n/d> pairs\n{USAGE}")?;
                return Ok(EXIT_USAGE);
            }
            let spec = request_body(&file, stdin)?;
            let mut body = session_open(&spec);
            for pair in operands.chunks(2) {
                body.push_str(&format!("update {} {}\n", pair[0], pair[1]));
            }
            body.push_str("value\nsession close\n");
            session_check(&client, &body, out)
        }
        "explain" => {
            let k = match operands.as_slice() {
                [k] => k.clone(),
                // Tolerate the wire grammar's spelling: `explain top <k>`.
                [top, k] if top == "top" => k.clone(),
                _ => {
                    writeln!(out, "gfomc-cli: explain needs a single <k>\n{USAGE}")?;
                    return Ok(EXIT_USAGE);
                }
            };
            let spec = request_body(&file, stdin)?;
            let mut body = session_open(&spec);
            body.push_str(&format!("explain top {k}\nsession close\n"));
            session_check(&client, &body, out)
        }
        "status" => get(&client, "/status", out),
        "routes" => get(&client, "/routes", out),
        "cache" => get(&client, "/cache", out),
        "metrics" => get(&client, "/metrics", out),
        "slow" => get(&client, "/slow", out),
        "check" => {
            let body = request_body(&file, stdin)?;
            if is_session_body(&body) {
                session_check(&client, &body, out)
            } else {
                check(&client, &body, out)
            }
        }
        other => {
            writeln!(out, "gfomc-cli: unknown command '{other}'\n{USAGE}")?;
            Ok(EXIT_USAGE)
        }
    }
}

/// A body belongs on `/session` when its first non-blank line is a
/// `session` header; everything else is an [`EvalRequest`] for `/eval`.
fn is_session_body(body: &str) -> bool {
    body.lines()
        .map(str::trim)
        .find(|l| !l.is_empty())
        .is_some_and(|l| l == "session" || l.starts_with("session "))
}

/// Starts a one-shot session body: the `session open` header followed by
/// the caller's [`EvalRequest`] spec lines, newline-terminated.
fn session_open(spec: &str) -> String {
    let mut body = String::from("session open\n");
    body.push_str(spec);
    if !body.ends_with('\n') {
        body.push('\n');
    }
    body
}

/// `submit`: one POST to `/eval`; the response body is printed verbatim
/// (the stable [`Routed`] text on 200, the server's error line otherwise).
fn submit(client: &Client, body: &str, out: &mut dyn Write) -> io::Result<i32> {
    let resp = client.post("/eval", body)?;
    if resp.status == 200 {
        write!(out, "{}", resp.body)?;
        return Ok(EXIT_OK);
    }
    write!(out, "server error {}: {}", resp.status, resp.body)?;
    if let Some(secs) = resp.retry_after {
        writeln!(out, "retry after {secs}s")?;
    }
    Ok(EXIT_SERVER)
}

/// `status` / `routes` / `cache` / `metrics` / `slow`: print the
/// endpoint body verbatim.
fn get(client: &Client, path: &str, out: &mut dyn Write) -> io::Result<i32> {
    let resp = client.get(path)?;
    write!(out, "{}", resp.body)?;
    Ok(if resp.status == 200 {
        EXIT_OK
    } else {
        EXIT_SERVER
    })
}

/// `check`: the bit-identity drill. The same body is routed over the wire
/// and through a fresh in-process [`Engine`]; seeded determinism promises
/// the two rendered [`Routed`] records are byte-for-byte equal.
fn check(client: &Client, body: &str, out: &mut dyn Write) -> io::Result<i32> {
    let request: EvalRequest = match body.parse() {
        Ok(req) => req,
        Err(e) => {
            writeln!(out, "request does not parse locally: {e}")?;
            return Ok(EXIT_USAGE);
        }
    };
    let resp = client.post("/eval", body)?;
    if resp.status != 200 {
        write!(out, "server error {}: {}", resp.status, resp.body)?;
        return Ok(EXIT_SERVER);
    }
    let direct = match Engine::new().evaluate_request(&request) {
        Ok(routed) => routed,
        Err(e) => {
            writeln!(out, "direct evaluation rejected the budget: {e}")?;
            return Ok(EXIT_USAGE);
        }
    };
    let direct_text = direct.to_string();
    if resp.body != direct_text {
        writeln!(out, "MISMATCH between wire and direct answers")?;
        writeln!(
            out,
            "--- wire ---\n{}--- direct ---\n{direct_text}",
            resp.body
        )?;
        return Ok(EXIT_MISMATCH);
    }
    // Belt and braces: the wire text must also parse back to the value.
    match resp.body.parse::<Routed>() {
        Ok(parsed) if parsed == direct => {
            write!(out, "identical ({})\n{}", direct.route, resp.body)?;
            Ok(EXIT_OK)
        }
        Ok(_) => {
            writeln!(out, "MISMATCH after reparse")?;
            Ok(EXIT_MISMATCH)
        }
        Err(e) => {
            writeln!(out, "wire answer does not reparse: {e}")?;
            Ok(EXIT_MISMATCH)
        }
    }
}

/// `session`: one POST to `/session`; the response body is printed
/// verbatim (the stable [`SessionResponse`] text on 200, the server's
/// typed error line otherwise).
fn session_submit(client: &Client, body: &str, out: &mut dyn Write) -> io::Result<i32> {
    let resp = client.post("/session", body)?;
    if resp.status == 200 {
        write!(out, "{}", resp.body)?;
        return Ok(EXIT_OK);
    }
    write!(out, "server error {}: {}", resp.status, resp.body)?;
    if let Some(secs) = resp.retry_after {
        writeln!(out, "retry after {secs}s")?;
    }
    Ok(EXIT_SERVER)
}

/// The session half of the bit-identity drill: the body is routed over
/// the wire and replayed through a fresh in-process [`Engine`]. Session
/// ids encode allocation order rather than content, so the server's id
/// is copied onto the replay before the byte comparison; every reply
/// line after the header must match byte-for-byte.
///
/// Only `session open` bodies are checkable: `session use <id>` /
/// `session close <id>` refer to state held by the server, which a
/// fresh in-process replay cannot reproduce (the id is always unknown
/// to it), so those are rejected up front rather than misreported as
/// replay failures.
fn session_check(client: &Client, body: &str, out: &mut dyn Write) -> io::Result<i32> {
    let request: SessionRequest = match body.parse() {
        Ok(req) => req,
        Err(e) => {
            writeln!(out, "request does not parse locally: {e}")?;
            return Ok(EXIT_USAGE);
        }
    };
    if !matches!(request, SessionRequest::Open { .. }) {
        writeln!(
            out,
            "check only supports 'session open' bodies: 'use'/'close' \
             refer to server-held state a fresh replay cannot reproduce"
        )?;
        return Ok(EXIT_USAGE);
    }
    let resp = client.post("/session", body)?;
    if resp.status != 200 {
        write!(out, "server error {}: {}", resp.status, resp.body)?;
        return Ok(EXIT_SERVER);
    }
    let mut direct = match Engine::new().session_request(&request) {
        Ok(response) => response,
        Err(e) => {
            writeln!(out, "direct replay rejected the request: {e}")?;
            return Ok(EXIT_USAGE);
        }
    };
    let parsed: SessionResponse = match resp.body.parse() {
        Ok(parsed) => parsed,
        Err(e) => {
            writeln!(out, "wire answer does not reparse: {e}")?;
            return Ok(EXIT_MISMATCH);
        }
    };
    direct.id = parsed.id;
    let direct_text = direct.to_string();
    if resp.body != direct_text {
        writeln!(out, "MISMATCH between wire and direct answers")?;
        writeln!(
            out,
            "--- wire ---\n{}--- direct ---\n{direct_text}",
            resp.body
        )?;
        return Ok(EXIT_MISMATCH);
    }
    if parsed != direct {
        writeln!(out, "MISMATCH after reparse")?;
        return Ok(EXIT_MISMATCH);
    }
    write!(out, "identical (session)\n{}", resp.body)?;
    Ok(EXIT_OK)
}

/// Reads all of real stdin — the binary's body source.
pub fn stdin_body() -> io::Result<String> {
    let mut buf = String::new();
    io::stdin().read_to_string(&mut buf)?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(args: &[&str], stdin: &str) -> (i32, String) {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        let body = stdin.to_string();
        let code = run(&args, &mut || Ok(body.clone()), &mut out);
        (code, String::from_utf8(out).unwrap())
    }

    #[test]
    fn no_command_prints_usage() {
        let (code, out) = run_to_string(&[], "");
        assert_eq!(code, EXIT_USAGE);
        assert!(out.contains("usage:"));
    }

    #[test]
    fn unknown_command_and_flags_are_usage_errors() {
        for args in [
            &["frobnicate"][..],
            &["submit", "--bogus"],
            &["submit", "--addr"],
        ] {
            let (code, _) = run_to_string(args, "");
            assert_eq!(code, EXIT_USAGE, "{args:?}");
        }
    }

    #[test]
    fn submit_without_server_reports_transport_error() {
        // Port 1 on localhost is essentially never listening.
        let (code, out) = run_to_string(&["submit", "--addr", "127.0.0.1:1"], "query x\n");
        assert_eq!(code, EXIT_USAGE);
        assert!(out.contains("gfomc-cli:"), "{out}");
    }
}
