//! # gfomc-cli
//!
//! Command-line client for the gfomc service. Seven subcommands:
//!
//! * `submit` — POST an [`EvalRequest`] body to `/eval` and print the
//!   [`Routed`] response text;
//! * `status` / `routes` / `cache` — print the matching GET endpoint's
//!   counters verbatim;
//! * `metrics` — print `/metrics` (Prometheus text exposition of the
//!   engine registry) verbatim;
//! * `slow` — print `/slow` (the slow-query ring buffer's traces)
//!   verbatim;
//! * `check` — submit a body over the wire **and** route the same request
//!   through a direct in-process [`Engine`], then assert the two answers
//!   are bit-identical. This is the end-to-end determinism drill the CI
//!   smoke job runs: if the wire format, the server, or the engine ever
//!   disagree byte-for-byte, `check` exits non-zero.
//!
//! The library entry point [`run`] takes its arguments, an input-body
//! source, and an output sink explicitly, so the test suite can drive
//! every subcommand without a subprocess; the binary is a thin wrapper.

use gfomc_engine::{Engine, EvalRequest, Routed};
use gfomc_serve::Client;
use std::io::{self, Read, Write};

/// Exit code vocabulary: success.
pub const EXIT_OK: i32 = 0;
/// Exit code vocabulary: usage or transport failure.
pub const EXIT_USAGE: i32 = 1;
/// Exit code vocabulary: the server answered with a non-200 status.
pub const EXIT_SERVER: i32 = 2;
/// Exit code vocabulary: `check` found a wire/direct answer mismatch.
pub const EXIT_MISMATCH: i32 = 3;

const USAGE: &str = "usage: gfomc-cli <submit|status|routes|cache|metrics|slow|check> \
                     [--addr HOST:PORT] [--file PATH]\n\
                     submit/check read the request body from --file or stdin";

/// Where a request body comes from: `--file PATH`, or the caller's stdin
/// closure (the binary reads real stdin; tests inject a string).
fn request_body(
    file: &Option<String>,
    stdin: &mut dyn FnMut() -> io::Result<String>,
) -> io::Result<String> {
    match file {
        Some(path) => std::fs::read_to_string(path),
        None => stdin(),
    }
}

/// Runs one CLI invocation. `args` excludes the program name; `stdin`
/// supplies the request body when no `--file` is given; all output
/// (results and errors) goes to `out`. Returns the process exit code.
pub fn run(
    args: &[String],
    stdin: &mut dyn FnMut() -> io::Result<String>,
    out: &mut dyn Write,
) -> i32 {
    match run_inner(args, stdin, out) {
        Ok(code) => code,
        Err(e) => {
            let _ = writeln!(out, "gfomc-cli: {e}");
            EXIT_USAGE
        }
    }
}

fn run_inner(
    args: &[String],
    stdin: &mut dyn FnMut() -> io::Result<String>,
    out: &mut dyn Write,
) -> io::Result<i32> {
    let Some(command) = args.first() else {
        writeln!(out, "{USAGE}")?;
        return Ok(EXIT_USAGE);
    };
    let mut addr = "127.0.0.1:7070".to_string();
    let mut file: Option<String> = None;
    let mut rest = args[1..].iter();
    while let Some(flag) = rest.next() {
        match flag.as_str() {
            "--addr" => match rest.next() {
                Some(v) => addr = v.clone(),
                None => {
                    writeln!(out, "gfomc-cli: --addr needs a value")?;
                    return Ok(EXIT_USAGE);
                }
            },
            "--file" => match rest.next() {
                Some(v) => file = Some(v.clone()),
                None => {
                    writeln!(out, "gfomc-cli: --file needs a value")?;
                    return Ok(EXIT_USAGE);
                }
            },
            other => {
                writeln!(out, "gfomc-cli: unknown flag '{other}'\n{USAGE}")?;
                return Ok(EXIT_USAGE);
            }
        }
    }
    let client = Client::new(addr);
    match command.as_str() {
        "submit" => {
            let body = request_body(&file, stdin)?;
            submit(&client, &body, out)
        }
        "status" => get(&client, "/status", out),
        "routes" => get(&client, "/routes", out),
        "cache" => get(&client, "/cache", out),
        "metrics" => get(&client, "/metrics", out),
        "slow" => get(&client, "/slow", out),
        "check" => {
            let body = request_body(&file, stdin)?;
            check(&client, &body, out)
        }
        other => {
            writeln!(out, "gfomc-cli: unknown command '{other}'\n{USAGE}")?;
            Ok(EXIT_USAGE)
        }
    }
}

/// `submit`: one POST to `/eval`; the response body is printed verbatim
/// (the stable [`Routed`] text on 200, the server's error line otherwise).
fn submit(client: &Client, body: &str, out: &mut dyn Write) -> io::Result<i32> {
    let resp = client.post("/eval", body)?;
    if resp.status == 200 {
        write!(out, "{}", resp.body)?;
        return Ok(EXIT_OK);
    }
    write!(out, "server error {}: {}", resp.status, resp.body)?;
    if let Some(secs) = resp.retry_after {
        writeln!(out, "retry after {secs}s")?;
    }
    Ok(EXIT_SERVER)
}

/// `status` / `routes` / `cache` / `metrics` / `slow`: print the
/// endpoint body verbatim.
fn get(client: &Client, path: &str, out: &mut dyn Write) -> io::Result<i32> {
    let resp = client.get(path)?;
    write!(out, "{}", resp.body)?;
    Ok(if resp.status == 200 {
        EXIT_OK
    } else {
        EXIT_SERVER
    })
}

/// `check`: the bit-identity drill. The same body is routed over the wire
/// and through a fresh in-process [`Engine`]; seeded determinism promises
/// the two rendered [`Routed`] records are byte-for-byte equal.
fn check(client: &Client, body: &str, out: &mut dyn Write) -> io::Result<i32> {
    let request: EvalRequest = match body.parse() {
        Ok(req) => req,
        Err(e) => {
            writeln!(out, "request does not parse locally: {e}")?;
            return Ok(EXIT_USAGE);
        }
    };
    let resp = client.post("/eval", body)?;
    if resp.status != 200 {
        write!(out, "server error {}: {}", resp.status, resp.body)?;
        return Ok(EXIT_SERVER);
    }
    let direct = match Engine::new().evaluate_request(&request) {
        Ok(routed) => routed,
        Err(e) => {
            writeln!(out, "direct evaluation rejected the budget: {e}")?;
            return Ok(EXIT_USAGE);
        }
    };
    let direct_text = direct.to_string();
    if resp.body != direct_text {
        writeln!(out, "MISMATCH between wire and direct answers")?;
        writeln!(
            out,
            "--- wire ---\n{}--- direct ---\n{direct_text}",
            resp.body
        )?;
        return Ok(EXIT_MISMATCH);
    }
    // Belt and braces: the wire text must also parse back to the value.
    match resp.body.parse::<Routed>() {
        Ok(parsed) if parsed == direct => {
            write!(out, "identical ({})\n{}", direct.route, resp.body)?;
            Ok(EXIT_OK)
        }
        Ok(_) => {
            writeln!(out, "MISMATCH after reparse")?;
            Ok(EXIT_MISMATCH)
        }
        Err(e) => {
            writeln!(out, "wire answer does not reparse: {e}")?;
            Ok(EXIT_MISMATCH)
        }
    }
}

/// Reads all of real stdin — the binary's body source.
pub fn stdin_body() -> io::Result<String> {
    let mut buf = String::new();
    io::stdin().read_to_string(&mut buf)?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(args: &[&str], stdin: &str) -> (i32, String) {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        let body = stdin.to_string();
        let code = run(&args, &mut || Ok(body.clone()), &mut out);
        (code, String::from_utf8(out).unwrap())
    }

    #[test]
    fn no_command_prints_usage() {
        let (code, out) = run_to_string(&[], "");
        assert_eq!(code, EXIT_USAGE);
        assert!(out.contains("usage:"));
    }

    #[test]
    fn unknown_command_and_flags_are_usage_errors() {
        for args in [
            &["frobnicate"][..],
            &["submit", "--bogus"],
            &["submit", "--addr"],
        ] {
            let (code, _) = run_to_string(args, "");
            assert_eq!(code, EXIT_USAGE, "{args:?}");
        }
    }

    #[test]
    fn submit_without_server_reports_transport_error() {
        // Port 1 on localhost is essentially never listening.
        let (code, out) = run_to_string(&["submit", "--addr", "127.0.0.1:1"], "query x\n");
        assert_eq!(code, EXIT_USAGE);
        assert!(out.contains("gfomc-cli:"), "{out}");
    }
}
