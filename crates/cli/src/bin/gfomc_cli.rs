//! `gfomc-cli` — thin binary over [`gfomc_cli::run`]; see the library
//! docs for the subcommand reference.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout();
    let code = gfomc_cli::run(&args, &mut gfomc_cli::stdin_body, &mut stdout);
    ExitCode::from(code.clamp(0, u8::MAX as i32) as u8)
}
