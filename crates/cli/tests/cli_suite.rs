//! Drives every `gfomc-cli` subcommand against a live in-process server,
//! including the `check` bit-identity drill the CI smoke job relies on.

use gfomc_arith::Rational;
use gfomc_cli::{run, EXIT_OK, EXIT_SERVER, EXIT_USAGE};
use gfomc_engine::{Budget, Engine, EvalRequest};
use gfomc_query::catalog;
use gfomc_serve::{Server, ServerHandle};
use gfomc_tid::{Tid, Tuple};
use std::sync::Arc;

fn spawn(engine: Engine) -> ServerHandle {
    Server::bind(Arc::new(engine), "127.0.0.1:0")
        .expect("bind")
        .spawn()
        .expect("spawn")
}

fn cli(handle: &ServerHandle, args: &[&str], stdin: &str) -> (i32, String) {
    let mut full: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    full.extend(["--addr".to_string(), handle.addr().to_string()]);
    let mut out = Vec::new();
    let body = stdin.to_string();
    let code = run(&full, &mut || Ok(body.clone()), &mut out);
    (code, String::from_utf8(out).unwrap())
}

/// A small unsafe instance (compiled route) with explicit probabilities.
fn exact_request() -> EvalRequest {
    let mut tid = Tid::all_present([0, 1], [1000]);
    tid.set_prob(Tuple::R(0), Rational::one_half());
    tid.set_prob(Tuple::S(0, 0, 1000), Rational::from_ints(3, 8));
    tid.set_prob(Tuple::T(1000), Rational::one_half());
    EvalRequest::new(catalog::h1(), tid)
}

/// The same instance forced down the sampled route by a zero circuit
/// budget — the approx half of the smoke drill.
fn sampled_request() -> EvalRequest {
    exact_request().with_budget(
        Budget::default()
            .with_max_circuit_cost(0)
            .with_samples(512)
            .expect("positive sample budget")
            .with_seed(0xD15C),
    )
}

#[test]
fn submit_prints_the_routed_wire_text() {
    let handle = spawn(Engine::new());
    let req = exact_request();
    let (code, out) = cli(&handle, &["submit"], &req.to_string());
    assert_eq!(code, EXIT_OK, "{out}");
    let direct = Engine::new().evaluate_request(&req).unwrap();
    assert_eq!(out, direct.to_string());
    handle.stop();
}

#[test]
fn check_asserts_bit_identity_for_exact_and_sampled_routes() {
    let handle = spawn(Engine::new());
    for (name, req) in [("exact", exact_request()), ("sampled", sampled_request())] {
        let (code, out) = cli(&handle, &["check"], &req.to_string());
        assert_eq!(code, EXIT_OK, "{name}: {out}");
        assert!(out.starts_with("identical"), "{name}: {out}");
    }
    handle.stop();
}

#[test]
fn status_routes_and_cache_print_server_counters() {
    let handle = spawn(Engine::new());
    let req = exact_request().with_tenant("cli-test");
    let (code, _) = cli(&handle, &["submit"], &req.to_string());
    assert_eq!(code, EXIT_OK);

    let (code, out) = cli(&handle, &["status"], "");
    assert_eq!(code, EXIT_OK);
    assert!(out.contains("queue_max_depth "), "{out}");

    let (code, out) = cli(&handle, &["routes"], "");
    assert_eq!(code, EXIT_OK);
    assert!(out.contains("tenant cli-test "), "{out}");

    let (code, out) = cli(&handle, &["cache"], "");
    assert_eq!(code, EXIT_OK);
    assert!(out.contains("misses "), "{out}");
    handle.stop();
}

#[test]
fn submit_surfaces_server_rejections_as_exit_codes() {
    // 400: malformed body.
    let handle = spawn(Engine::new());
    let (code, out) = cli(&handle, &["submit"], "not a request\n");
    assert_eq!(code, EXIT_SERVER, "{out}");
    assert!(out.contains("server error 400"), "{out}");
    handle.stop();

    // 429: zero-depth gate; the Retry-After hint reaches the user.
    let handle = spawn(Engine::builder().max_queue_depth(0).build());
    let (code, out) = cli(&handle, &["submit"], &exact_request().to_string());
    assert_eq!(code, EXIT_SERVER, "{out}");
    assert!(out.contains("server error 429"), "{out}");
    assert!(out.contains("retry after"), "{out}");
    handle.stop();
}

#[test]
fn check_rejects_locally_unparseable_bodies_before_the_wire() {
    let handle = spawn(Engine::new());
    let (code, out) = cli(&handle, &["check"], "garbage\n");
    assert_eq!(code, EXIT_USAGE, "{out}");
    assert!(out.contains("does not parse locally"), "{out}");
    handle.stop();
}

#[test]
fn update_composes_a_one_shot_session_and_checks_bit_identity() {
    let handle = spawn(Engine::new());
    let spec = exact_request().to_string();
    let (code, out) = cli(
        &handle,
        &["update", "R(u0)", "1/3", "T(v1000)", "9/10", "R(u0)", "1/3"],
        &spec,
    );
    assert_eq!(code, EXIT_OK, "{out}");
    assert!(out.starts_with("identical (session)"), "{out}");
    assert!(out.contains("updated R(u0) 1/3 repriced "), "{out}");
    // The exact repeat must report a zero-gate re-pricing.
    assert!(out.contains("repriced 0 of "), "{out}");
    assert!(out.contains("\nvalue "), "{out}");
    assert!(out.trim_end().ends_with("closed"), "{out}");
    handle.stop();
}

#[test]
fn explain_ranks_influential_tuples_over_the_wire() {
    let handle = spawn(Engine::new());
    let spec = exact_request().to_string();
    let (code, out) = cli(&handle, &["explain", "2"], &spec);
    assert_eq!(code, EXIT_OK, "{out}");
    assert!(out.starts_with("identical (session)"), "{out}");
    assert!(out.contains("influence 1 "), "{out}");
    assert!(out.contains("influence 2 "), "{out}");
    // The wire grammar spelling is tolerated too, and agrees.
    let (code, spelled) = cli(&handle, &["explain", "top", "2"], &spec);
    assert_eq!(code, EXIT_OK, "{spelled}");
    handle.stop();
}

#[test]
fn check_routes_session_bodies_to_the_session_endpoint() {
    let handle = spawn(Engine::new());
    let body = format!(
        "session open\n{}update S0(u0,v1000) 1/16\nvalue\nexplain top 3\nsession close\n",
        exact_request()
    );
    let (code, out) = cli(&handle, &["check"], &body);
    assert_eq!(code, EXIT_OK, "{out}");
    assert!(out.starts_with("identical (session)"), "{out}");

    // Malformed session bodies are rejected locally before the wire.
    let (code, out) = cli(&handle, &["check"], "session open\nexplain top 0\n");
    assert_eq!(code, EXIT_USAGE, "{out}");
    assert!(out.contains("does not parse locally"), "{out}");

    // `use`/`close` bodies refer to server-held state a fresh replay
    // cannot reproduce — check rejects them up front instead of
    // misreporting a guaranteed replay failure.
    for body in ["session use 7\nvalue\n", "session close 7\n"] {
        let (code, out) = cli(&handle, &["check"], body);
        assert_eq!(code, EXIT_USAGE, "{out}");
        assert!(out.contains("only supports 'session open'"), "{out}");
    }
    handle.stop();
}

#[test]
fn session_submit_surfaces_typed_server_errors() {
    let handle = spawn(Engine::new());
    // An unknown id is a typed 400 from the server, surfaced as EXIT_SERVER.
    let (code, out) = cli(&handle, &["session"], "session use 424242\nvalue\n");
    assert_eq!(code, EXIT_SERVER, "{out}");
    assert!(out.contains("server error 400"), "{out}");
    assert!(out.contains("unknown session 424242"), "{out}");

    // A well-formed one-shot lifecycle prints the response verbatim.
    let body = format!("session open\n{}value\nsession close\n", exact_request());
    let (code, out) = cli(&handle, &["session"], &body);
    assert_eq!(code, EXIT_OK, "{out}");
    assert!(out.starts_with("session "), "{out}");
    assert!(out.trim_end().ends_with("closed"), "{out}");

    // Bad operand arity is a local usage error, never a request.
    let (code, out) = cli(&handle, &["update", "R(u0)"], "");
    assert_eq!(code, EXIT_USAGE, "{out}");
    assert!(out.contains("update needs"), "{out}");
    handle.stop();
}

#[test]
fn metrics_and_slow_print_the_observability_endpoints() {
    let handle = spawn(Engine::builder().slow_threshold_nanos(0).build());
    let (code, _) = cli(&handle, &["submit"], &exact_request().to_string());
    assert_eq!(code, EXIT_OK);

    let (code, out) = cli(&handle, &["metrics"], "");
    assert_eq!(code, EXIT_OK);
    assert!(
        out.contains("# TYPE engine_requests_total counter"),
        "{out}"
    );
    assert!(
        out.contains("engine_request_nanos_count{route=\"compiled\"} 1"),
        "{out}"
    );

    let (code, out) = cli(&handle, &["slow"], "");
    assert_eq!(code, EXIT_OK);
    assert!(out.starts_with("slowlog count 1 "), "{out}");
    assert!(out.contains("route compiled"), "{out}");
    handle.stop();
}
