//! Bipartite ∀CNF queries (Definition 2.3) and their rewritings.

use crate::atom::Pred;
use crate::clause::{Clause, ClauseShape};
use gfomc_logic::{Clause as PropClause, Cnf, Var};
use std::collections::BTreeSet;
use std::fmt;

/// Type of the left or right part of a bipartite query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PartType {
    /// Clauses contain the unary symbol (`R` on the left, `T` on the right).
    I,
    /// Clauses are disjunctions of `∀`-subclauses without unary symbols.
    II,
}

/// The type `A–B` of a bipartite query (§2, Definition 2.3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct QueryType {
    /// Type of the left clauses.
    pub left: PartType,
    /// Type of the right clauses.
    pub right: PartType,
}

/// A ∀CNF query over the bipartite vocabulary: a conjunction of
/// universally-quantified clauses, kept minimized and non-redundant.
///
/// The constant `false` query is represented by a single empty clause;
/// the constant `true` query by an empty clause list.
#[derive(Clone, PartialEq, Eq)]
pub struct BipartiteQuery {
    clauses: Vec<Clause>,
}

impl BipartiteQuery {
    /// Builds a query from clauses, minimizing each clause and removing
    /// redundant clauses (those reachable by a homomorphism from another).
    pub fn new(clauses: impl IntoIterator<Item = Clause>) -> Self {
        let mut cs: Vec<Clause> = clauses.into_iter().map(|c| c.minimize()).collect();
        if cs.iter().any(Clause::is_false) {
            return BipartiteQuery::bottom();
        }
        cs.sort();
        cs.dedup();
        // Remove redundant clauses: C_j is redundant if some other C_i has a
        // homomorphism C_i → C_j.
        let mut keep = vec![true; cs.len()];
        for j in 0..cs.len() {
            for i in 0..cs.len() {
                if i == j || !keep[i] {
                    continue;
                }
                if cs[i].homomorphism_to(&cs[j]).is_some() {
                    keep[j] = false;
                    break;
                }
            }
        }
        let mut idx = 0;
        cs.retain(|_| {
            let k = keep[idx];
            idx += 1;
            k
        });
        BipartiteQuery { clauses: cs }
    }

    /// The constant `true` query.
    pub fn top() -> Self {
        BipartiteQuery {
            clauses: Vec::new(),
        }
    }

    /// The constant `false` query.
    pub fn bottom() -> Self {
        BipartiteQuery {
            clauses: vec![Clause::new([])],
        }
    }

    /// True iff the constant `true`.
    pub fn is_true(&self) -> bool {
        self.clauses.is_empty()
    }

    /// True iff the constant `false`.
    pub fn is_false(&self) -> bool {
        self.clauses.first().is_some_and(Clause::is_false)
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// All predicate symbols.
    pub fn symbols(&self) -> BTreeSet<Pred> {
        self.clauses.iter().flat_map(|c| c.symbols()).collect()
    }

    /// The binary symbol indices used.
    pub fn binary_symbols(&self) -> BTreeSet<u32> {
        self.symbols()
            .into_iter()
            .filter_map(|p| match p {
                Pred::S(i) => Some(i),
                _ => None,
            })
            .collect()
    }

    /// The left clauses.
    pub fn left_clauses(&self) -> Vec<&Clause> {
        self.clauses.iter().filter(|c| c.is_left()).collect()
    }

    /// The middle clauses.
    pub fn middle_clauses(&self) -> Vec<&Clause> {
        self.clauses.iter().filter(|c| c.is_middle()).collect()
    }

    /// The right clauses.
    pub fn right_clauses(&self) -> Vec<&Clause> {
        self.clauses.iter().filter(|c| c.is_right()).collect()
    }

    /// True iff every clause is a left, middle, or right clause of
    /// Definition 2.3 (e.g. `H₀ = R∨S∨T` is *not* of this shape).
    pub fn is_bipartite_shape(&self) -> bool {
        self.clauses
            .iter()
            .all(|c| !matches!(c.shape(), ClauseShape::Other))
    }

    /// The `A–B` type of the query, if it has uniformly-typed left clauses
    /// and uniformly-typed right clauses (and at least one of each).
    pub fn query_type(&self) -> Option<QueryType> {
        let mut left = None;
        let mut right = None;
        for c in &self.clauses {
            match c.shape() {
                ClauseShape::LeftI(_) => match left {
                    None | Some(PartType::I) => left = Some(PartType::I),
                    _ => return None,
                },
                ClauseShape::LeftII(_) => match left {
                    None | Some(PartType::II) => left = Some(PartType::II),
                    _ => return None,
                },
                ClauseShape::RightI(_) => match right {
                    None | Some(PartType::I) => right = Some(PartType::I),
                    _ => return None,
                },
                ClauseShape::RightII(_) => match right {
                    None | Some(PartType::II) => right = Some(PartType::II),
                    _ => return None,
                },
                ClauseShape::Middle(_) => {}
                ClauseShape::Other => return None,
            }
        }
        Some(QueryType {
            left: left?,
            right: right?,
        })
    }

    /// The rewriting `Q[p := value]` of Lemma 2.7: replaces every occurrence
    /// of the symbol `p` by the constant, then re-minimizes.
    pub fn set_symbol(&self, p: Pred, value: bool) -> BipartiteQuery {
        if self.is_false() {
            return BipartiteQuery::bottom();
        }
        if value {
            // Atoms of p become true: clauses mentioning p become true.
            BipartiteQuery::new(self.clauses.iter().filter(|c| !c.mentions(p)).cloned())
        } else {
            // Atoms of p disappear from every clause.
            BipartiteQuery::new(self.clauses.iter().map(|c| c.drop_pred(p)))
        }
    }

    /// Decomposes `Q_left` into the DNF of Eq. (47):
    /// `Q_left ≡ ∀x (G₁(x) ∨ … ∨ G_m(x))` where each `G_i(x,y)` is a CNF over
    /// the binary symbols (one subclause chosen from every left clause).
    /// The returned CNFs use `Var(i)` for binary symbol `S_i`. Minimized and
    /// deduplicated; absorbed disjuncts (implied by another) are *kept* —
    /// lattice construction handles logical equivalence.
    ///
    /// Only meaningful for Type-II left parts; Type-I clauses contribute
    /// their single subclause `R ∨ S_J` without the `R` (callers handling
    /// Type I use the Shannon expansion on `R` instead).
    pub fn left_dnf(&self) -> Vec<Cnf> {
        let subclause_sets: Vec<Vec<BTreeSet<u32>>> = self
            .left_clauses()
            .iter()
            .map(|c| match c.shape() {
                ClauseShape::LeftI(j) => vec![j],
                ClauseShape::LeftII(subs) => subs,
                _ => unreachable!(),
            })
            .collect();
        cross_product_cnfs(&subclause_sets)
    }

    /// Symmetric decomposition of `Q_right` (Eq. (49)).
    pub fn right_dnf(&self) -> Vec<Cnf> {
        let subclause_sets: Vec<Vec<BTreeSet<u32>>> = self
            .right_clauses()
            .iter()
            .map(|c| match c.shape() {
                ClauseShape::RightI(j) => vec![j],
                ClauseShape::RightII(subs) => subs,
                _ => unreachable!(),
            })
            .collect();
        cross_product_cnfs(&subclause_sets)
    }

    /// The middle part `C(x,y)` as a CNF over binary symbols (Eq. (48)).
    pub fn middle_cnf(&self) -> Cnf {
        Cnf::new(self.middle_clauses().iter().map(|c| match c.shape() {
            ClauseShape::Middle(j) => PropClause::new(j.into_iter().map(Var)),
            _ => unreachable!(),
        }))
    }
}

/// Expands a conjunction of disjunctions-of-subclauses into the list of CNFs
/// obtained by choosing one subclause per clause (CNF → DNF distribution,
/// as in Example C.5).
fn cross_product_cnfs(subclause_sets: &[Vec<BTreeSet<u32>>]) -> Vec<Cnf> {
    let mut result: Vec<Cnf> = vec![Cnf::top()];
    for options in subclause_sets {
        let mut next = Vec::with_capacity(result.len() * options.len());
        for partial in &result {
            for j in options {
                let clause = PropClause::new(j.iter().copied().map(Var));
                next.push(partial.and(&Cnf::of_clause(clause)));
            }
        }
        result = next;
    }
    result.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    result.dedup();
    result
}

impl fmt::Display for BipartiteQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_true() {
            return write!(f, "true");
        }
        if self.is_false() {
            return write!(f, "false");
        }
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " & ")?;
            }
            write!(f, "[{c}]")?;
        }
        Ok(())
    }
}

impl fmt::Debug for BipartiteQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// A catalog of named queries from the paper, used across tests, examples,
/// and benchmarks.
pub mod catalog {
    use super::*;
    use crate::atom::{Atom, CVar};

    /// `H₀ = ∀x∀y (R(x) ∨ S₀(x,y) ∨ T(y))` — the canonical hard query
    /// (§2, Theorem 2.5). Not of bipartite shape (one clause holds both
    /// unary symbols).
    pub fn h0() -> BipartiteQuery {
        BipartiteQuery::new([Clause::new([
            Atom::R(CVar::X(0)),
            Atom::S(0, CVar::X(0), CVar::Y(0)),
            Atom::T(CVar::Y(0)),
        ])])
    }

    /// `H₁ = ∀x∀y (R ∨ S₀) ∧ (S₀ ∨ T)` — the shortest final Type-I query
    /// (the intro's running example; length 1).
    pub fn h1() -> BipartiteQuery {
        BipartiteQuery::new([Clause::left_i([0]), Clause::right_i([0])])
    }

    /// The chain query `H_k`: `(R∨S₀)(S₀∨S₁)…(S_{k-1}∨T)` with `k ≥ 1`
    /// binary symbols — final Type-I of length `k`.
    pub fn hk(k: usize) -> BipartiteQuery {
        assert!(k >= 1);
        let mut clauses = vec![Clause::left_i([0])];
        for i in 0..k - 1 {
            clauses.push(Clause::middle([i as u32, i as u32 + 1]));
        }
        clauses.push(Clause::right_i([k as u32 - 1]));
        BipartiteQuery::new(clauses)
    }

    /// An unsafe Type-I query with a wide middle clause:
    /// `(R∨S₀) ∧ (S₀∨S₁∨S₂) ∧ (S₂∨T)`. Not final: `S₁ := 0` shortens the
    /// middle clause while preserving unsafety.
    pub fn type_i_wide() -> BipartiteQuery {
        BipartiteQuery::new([
            Clause::left_i([0]),
            Clause::middle([0, 1, 2]),
            Clause::right_i([2]),
        ])
    }

    /// A Type-I query with multi-symbol left/right clauses:
    /// `(R∨S₀∨S₁) ∧ (S₁∨S₂) ∧ (S₂∨S₃) ∧ (S₃∨S₀∨T)` — unsafe; the shared
    /// symbol `S₀` gives a direct left-right path of length 1.
    pub fn type_i_braided() -> BipartiteQuery {
        BipartiteQuery::new([
            Clause::left_i([0, 1]),
            Clause::middle([1, 2]),
            Clause::middle([2, 3]),
            Clause::right_i([3, 0]),
        ])
    }

    /// Example C.9 from the paper (Type II–II, unsafe, not forbidden):
    /// `∀x(∀yS₁ ∨ ∀yS₂) ∧ ∀x∀y(S₁∨S₃) ∧ ∀y(∀xS₃ ∨ ∀xS₄)`
    /// with S₁..S₄ renamed to S₀..S₃.
    pub fn example_c9() -> BipartiteQuery {
        BipartiteQuery::new([
            Clause::left_ii(&[&[0], &[1]]),
            Clause::middle([0, 2]),
            Clause::right_ii(&[&[2], &[3]]),
        ])
    }

    /// Example C.15 (a forbidden Type-II query) with symbols renamed:
    /// `U → S₀`, `S₁..S₄ → S₁..S₄`, `V → S₅`:
    /// `∀x(∀y(S₀∨S₁) ∨ ∀y(S₀∨S₂)) ∧ ∀x∀y(S₁∨S₂∨S₃∨S₄) ∧
    ///  ∀y(∀x(S₅∨S₃) ∨ ∀x(S₅∨S₄))`.
    pub fn example_c15() -> BipartiteQuery {
        BipartiteQuery::new([
            Clause::left_ii(&[&[0, 1], &[0, 2]]),
            Clause::middle([1, 2, 3, 4]),
            Clause::right_ii(&[&[5, 3], &[5, 4]]),
        ])
    }

    /// A safe query: no right clauses at all —
    /// `(R∨S₀) ∧ (S₀∨S₁)`.
    pub fn safe_no_right() -> BipartiteQuery {
        BipartiteQuery::new([Clause::left_i([0]), Clause::middle([0, 1])])
    }

    /// A safe query with both left and right clauses but on disjoint
    /// symbols: `(R∨S₀) ∧ (S₁∨T)`.
    pub fn safe_disconnected() -> BipartiteQuery {
        BipartiteQuery::new([Clause::left_i([0]), Clause::right_i([1])])
    }

    /// A safe query with a middle clause bridging nothing:
    /// `(R∨S₀) ∧ (S₁∨S₂) ∧ (S₃∨T)`.
    pub fn safe_three_components() -> BipartiteQuery {
        BipartiteQuery::new([
            Clause::left_i([0]),
            Clause::middle([1, 2]),
            Clause::right_i([3]),
        ])
    }

    /// Example A.3's base query (Type I–II with a ternary middle clause and a
    /// ubiquitous right symbol), renamed: `S₀..S₃` as in the paper,
    /// `U → S₄`:
    /// `(R∨S₀) ∧ (S₀∨S₁) ∧ (S₁∨S₂∨S₃) ∧
    ///  ∀y(∀x(S₄∨S₁∨S₂) ∨ ∀x(S₄∨S₁∨S₃) ∨ ∀x(S₄∨S₂∨S₃))`.
    pub fn example_a3() -> BipartiteQuery {
        BipartiteQuery::new([
            Clause::left_i([0]),
            Clause::middle([0, 1]),
            Clause::middle([1, 2, 3]),
            Clause::right_ii(&[&[4, 1, 2], &[4, 1, 3], &[4, 2, 3]]),
        ])
    }

    /// Example C.18 (a final Type-II query with *two* left-ubiquitous
    /// symbols, both occurring in middle clauses), renamed:
    /// `U → S₀`, `U′ → S₁`, `S₁..S₅ → S₂..S₆`, `V → S₇`.
    pub fn example_c18() -> BipartiteQuery {
        BipartiteQuery::new([
            Clause::left_ii(&[&[0, 1, 2, 3], &[0, 1, 3, 4], &[0, 1, 2, 4]]),
            Clause::middle([2, 3, 4, 5, 6]),
            Clause::right_ii(&[&[7, 5], &[7, 6]]),
            Clause::middle([0, 2, 3, 4]),
            Clause::middle([1, 2, 3, 4]),
        ])
    }

    /// Every unsafe catalog query paired with its name.
    pub fn unsafe_catalog() -> Vec<(&'static str, BipartiteQuery)> {
        vec![
            ("h0", h0()),
            ("h1", h1()),
            ("h2", hk(2)),
            ("h3", hk(3)),
            ("type_i_wide", type_i_wide()),
            ("type_i_braided", type_i_braided()),
            ("example_c9", example_c9()),
            ("example_c15", example_c15()),
            ("example_a3", example_a3()),
            ("example_c18", example_c18()),
        ]
    }

    /// Every safe catalog query paired with its name.
    pub fn safe_catalog() -> Vec<(&'static str, BipartiteQuery)> {
        vec![
            ("safe_no_right", safe_no_right()),
            ("safe_disconnected", safe_disconnected()),
            ("safe_three_components", safe_three_components()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::catalog::*;
    use super::*;

    #[test]
    fn redundant_clause_removed() {
        // Middle S_{0} makes middle S_{0,1} redundant.
        let q = BipartiteQuery::new([Clause::middle([0]), Clause::middle([0, 1])]);
        assert_eq!(q.clauses().len(), 1);
        assert_eq!(q.clauses()[0], Clause::middle([0]));
    }

    #[test]
    fn middle_makes_left_redundant() {
        // S_{0}(x,y) → R(x) ∨ S_{0,1}(x,y): left clause redundant.
        let q = BipartiteQuery::new([Clause::middle([0]), Clause::left_i([0, 1])]);
        assert_eq!(q.clauses().len(), 1);
        assert!(q.left_clauses().is_empty());
    }

    #[test]
    fn constants() {
        assert!(BipartiteQuery::top().is_true());
        assert!(BipartiteQuery::bottom().is_false());
        let q = BipartiteQuery::new([Clause::new([])]);
        assert!(q.is_false());
    }

    #[test]
    fn query_types() {
        assert_eq!(
            h1().query_type(),
            Some(QueryType {
                left: PartType::I,
                right: PartType::I
            })
        );
        assert_eq!(
            example_c9().query_type(),
            Some(QueryType {
                left: PartType::II,
                right: PartType::II
            })
        );
        assert_eq!(h0().query_type(), None); // not bipartite shape
        assert_eq!(safe_no_right().query_type(), None); // no right part
    }

    #[test]
    fn bipartite_shape_flags() {
        assert!(!h0().is_bipartite_shape());
        assert!(h1().is_bipartite_shape());
        assert!(example_c15().is_bipartite_shape());
    }

    #[test]
    fn set_symbol_true_drops_clauses() {
        let q = hk(2); // (R∨S0)(S0∨S1)(S1∨T)
        let q1 = q.set_symbol(Pred::S(0), true);
        // Clauses with S0 dropped: left clause and first middle are gone.
        assert_eq!(q1.clauses().len(), 1);
        assert!(q1.clauses()[0].is_right());
    }

    #[test]
    fn set_symbol_false_rewrites() {
        let q = hk(2);
        let q0 = q.set_symbol(Pred::S(0), false);
        // (R)(S1)(S1∨T) minimizes: S1 middle makes (S1∨T) redundant; R(x)
        // clause shape becomes Other (bare unary).
        assert!(q0.clauses().iter().any(|c| c.mentions(Pred::R)));
        assert!(!q0.is_false());
        // Setting the only symbol of a middle clause to false yields ⊥.
        let m = BipartiteQuery::new([Clause::middle([0])]);
        assert!(m.set_symbol(Pred::S(0), false).is_false());
    }

    #[test]
    fn example_c9_left_dnf_matches_paper() {
        // Left part of Example C.9: G1 = S0, G2 = S1 (singleton CNFs).
        let q = example_c9();
        let dnf = q.left_dnf();
        assert_eq!(dnf.len(), 2);
        let symbols: Vec<Vec<u32>> = dnf
            .iter()
            .map(|g| g.vars().into_iter().map(|Var(i)| i).collect())
            .collect();
        assert!(symbols.contains(&vec![0]));
        assert!(symbols.contains(&vec![1]));
    }

    #[test]
    fn left_dnf_of_two_clauses_is_cross_product() {
        // Example C.5 has two left clauses: the DNF crosses their subclauses.
        let q = BipartiteQuery::new([
            Clause::left_ii(&[&[0, 1], &[0, 2]]),
            Clause::left_ii(&[&[0], &[1, 2]]),
            // keep a right clause so the query shape is bipartite
            Clause::right_i([3]),
        ]);
        let dnf = q.left_dnf();
        // 2 × 2 = 4 choices, some possibly collapsing after minimization.
        assert!(dnf.len() <= 4 && dnf.len() >= 2, "got {}", dnf.len());
    }

    #[test]
    fn middle_cnf_collects_middles() {
        let q = example_c9();
        let c = q.middle_cnf();
        assert_eq!(c.clauses().len(), 1);
        assert_eq!(c.clauses()[0].vars(), &[Var(0), Var(2)]);
    }

    #[test]
    fn catalog_is_nonempty_and_wellformed() {
        for (name, q) in unsafe_catalog() {
            assert!(!q.is_true() && !q.is_false(), "{name}");
            assert!(!q.clauses().is_empty(), "{name}");
        }
        for (name, q) in safe_catalog() {
            assert!(!q.is_true() && !q.is_false(), "{name}");
        }
    }

    #[test]
    fn hk_has_expected_clause_count() {
        assert_eq!(hk(1).clauses().len(), 2);
        assert_eq!(hk(3).clauses().len(), 4);
        assert_eq!(hk(3).binary_symbols().len(), 3);
    }

    #[test]
    fn display_roundtrip_readable() {
        let s = h1().to_string();
        assert!(s.contains("R(x0)"));
        assert!(s.contains("T(y0)"));
    }
}
