//! Universally-quantified clauses of ∀CNF queries, with homomorphisms,
//! core minimization, and classification into the shapes of Definition 2.3.
//!
//! A clause is a disjunction of atoms with all variables universally
//! quantified (prenex per clause). Following the paper:
//!
//! * a homomorphism `C → C'` is a sort-preserving variable mapping sending
//!   every atom of `C` to an atom of `C'`; its existence implies
//!   `∀C ⇒ ∀C'`, making `C'` redundant in a conjunction containing `C`;
//! * a clause is *minimized* if every homomorphism `C → C` is a bijection;
//!   the core is computed by greedily dropping atoms `a` such that
//!   `C → C∖{a}` exists.

use crate::atom::{Atom, CVar, Pred};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A universally quantified clause (disjunction of atoms).
///
/// The constant `true` clause is not representable (true clauses are dropped
/// from queries); the empty clause is `false`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Clause {
    atoms: Vec<Atom>,
}

/// Renames bound variables to the lexicographically-least α-variant:
/// the minimum sorted atom vector over all injective renamings of the
/// `x`- and `y`-variables onto `0..n`. Variable counts per clause are tiny
/// (Definition 2.3 shapes), so permutation search is cheap.
fn canonicalize_vars(atoms: Vec<Atom>) -> Vec<Atom> {
    let xs: Vec<CVar> = dedup_vars(atoms.iter().flat_map(|a| a.vars()).filter(CVar::is_x));
    let ys: Vec<CVar> = dedup_vars(atoms.iter().flat_map(|a| a.vars()).filter(CVar::is_y));
    if xs.len() <= 1 && ys.len() <= 1 {
        // Fast path: a single variable of each sort just becomes index 0.
        return atoms
            .into_iter()
            .map(|a| {
                a.map_vars(&mut |v| match v {
                    CVar::X(_) => CVar::X(0),
                    CVar::Y(_) => CVar::Y(0),
                })
            })
            .collect();
    }
    assert!(
        xs.len() <= 6 && ys.len() <= 6,
        "clause has too many variables to canonicalize"
    );
    let mut best: Option<Vec<Atom>> = None;
    for xperm in permutations(xs.len()) {
        for yperm in permutations(ys.len()) {
            let mut renamed: Vec<Atom> = atoms
                .iter()
                .map(|a| {
                    a.map_vars(&mut |v| match v {
                        CVar::X(_) => {
                            let i = xs.iter().position(|&w| w == v).unwrap();
                            CVar::X(xperm[i] as u8)
                        }
                        CVar::Y(_) => {
                            let i = ys.iter().position(|&w| w == v).unwrap();
                            CVar::Y(yperm[i] as u8)
                        }
                    })
                })
                .collect();
            renamed.sort();
            if best.as_ref().is_none_or(|b| renamed < *b) {
                best = Some(renamed);
            }
        }
    }
    best.unwrap_or_default()
}

fn dedup_vars(it: impl Iterator<Item = CVar>) -> Vec<CVar> {
    let mut out = Vec::new();
    for v in it {
        if !out.contains(&v) {
            out.push(v);
        }
    }
    out
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    if n == 0 {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    for rest in permutations(n - 1) {
        for pos in 0..=rest.len() {
            let mut p = rest.clone();
            p.insert(pos, n - 1);
            out.push(p);
        }
    }
    out
}

/// Shape classification of a clause per Definition 2.3.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ClauseShape {
    /// `∀x∀y (R(x) ∨ S_J(x,y))` — left clause of Type I; `J` is the set of
    /// binary symbol indices.
    LeftI(BTreeSet<u32>),
    /// `∀x (∨_ℓ ∀y S_{J_ℓ}(x,y))` — left clause of Type II; one `J_ℓ` per
    /// `y`-variable.
    LeftII(Vec<BTreeSet<u32>>),
    /// `∀x∀y S_J(x,y)` — middle clause.
    Middle(BTreeSet<u32>),
    /// `∀x∀y (S_J(x,y) ∨ T(y))` — right clause of Type I.
    RightI(BTreeSet<u32>),
    /// `∀y (∨_ℓ ∀x S_{J_ℓ}(x,y))` — right clause of Type II.
    RightII(Vec<BTreeSet<u32>>),
    /// Anything else (e.g. `R(x) ∨ T(y) ∨ …` before simplification).
    Other,
}

impl Clause {
    /// Builds a clause, sorting and deduplicating atoms and canonicalizing
    /// bound-variable names (α-equivalent clauses compare equal).
    /// Panics on ill-sorted atoms.
    pub fn new(atoms: impl IntoIterator<Item = Atom>) -> Self {
        let mut atoms: Vec<Atom> = atoms.into_iter().collect();
        assert!(
            atoms.iter().all(Atom::is_well_sorted),
            "ill-sorted atom in clause"
        );
        atoms.sort();
        atoms.dedup();
        Clause {
            atoms: canonicalize_vars(atoms),
        }
    }

    /// Convenience: the middle clause `∀x∀y S_J(x,y)`.
    pub fn middle(j: impl IntoIterator<Item = u32>) -> Self {
        Clause::new(j.into_iter().map(|i| Atom::S(i, CVar::X(0), CVar::Y(0))))
    }

    /// Convenience: the left Type-I clause `∀x∀y (R(x) ∨ S_J(x,y))`.
    pub fn left_i(j: impl IntoIterator<Item = u32>) -> Self {
        Clause::new(
            std::iter::once(Atom::R(CVar::X(0)))
                .chain(j.into_iter().map(|i| Atom::S(i, CVar::X(0), CVar::Y(0)))),
        )
    }

    /// Convenience: the right Type-I clause `∀x∀y (S_J(x,y) ∨ T(y))`.
    pub fn right_i(j: impl IntoIterator<Item = u32>) -> Self {
        Clause::new(
            std::iter::once(Atom::T(CVar::Y(0)))
                .chain(j.into_iter().map(|i| Atom::S(i, CVar::X(0), CVar::Y(0)))),
        )
    }

    /// Convenience: the left Type-II clause `∀x (∨_ℓ ∀y S_{J_ℓ}(x,y))`,
    /// realized in prenex form with one `y`-variable per subclause.
    pub fn left_ii(subclauses: &[&[u32]]) -> Self {
        assert!(subclauses.len() > 1, "type II clause needs > 1 subclause");
        Clause::new(subclauses.iter().enumerate().flat_map(|(l, js)| {
            js.iter()
                .map(move |&i| Atom::S(i, CVar::X(0), CVar::Y(l as u8)))
        }))
    }

    /// Convenience: the right Type-II clause `∀y (∨_ℓ ∀x S_{J_ℓ}(x,y))`.
    pub fn right_ii(subclauses: &[&[u32]]) -> Self {
        assert!(subclauses.len() > 1, "type II clause needs > 1 subclause");
        Clause::new(subclauses.iter().enumerate().flat_map(|(l, js)| {
            js.iter()
                .map(move |&i| Atom::S(i, CVar::X(l as u8), CVar::Y(0)))
        }))
    }

    /// The atoms, sorted.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// True iff the clause has no atoms (the constant `false`).
    pub fn is_false(&self) -> bool {
        self.atoms.is_empty()
    }

    /// The set of predicate symbols — `Symb(C)` in the paper.
    pub fn symbols(&self) -> BTreeSet<Pred> {
        self.atoms.iter().map(Atom::pred).collect()
    }

    /// The set of variables.
    pub fn vars(&self) -> BTreeSet<CVar> {
        self.atoms.iter().flat_map(|a| a.vars()).collect()
    }

    /// True iff the clause contains the given predicate.
    pub fn mentions(&self, p: Pred) -> bool {
        self.atoms.iter().any(|a| a.pred() == p)
    }

    /// Drops all atoms with predicate `p` (the `p := false` rewriting).
    /// May produce the empty (false) clause.
    pub fn drop_pred(&self, p: Pred) -> Clause {
        Clause::new(self.atoms.iter().copied().filter(|a| a.pred() != p))
    }

    /// Searches for a homomorphism from `self` to `target`: a sort-preserving
    /// variable mapping sending every atom of `self` into `target`.
    pub fn homomorphism_to(&self, target: &Clause) -> Option<BTreeMap<CVar, CVar>> {
        let my_vars: Vec<CVar> = self.vars().into_iter().collect();
        let target_xs: Vec<CVar> = target.vars().into_iter().filter(CVar::is_x).collect();
        let target_ys: Vec<CVar> = target.vars().into_iter().filter(CVar::is_y).collect();
        let target_atoms: BTreeSet<Atom> = target.atoms.iter().copied().collect();
        let mut assignment: BTreeMap<CVar, CVar> = BTreeMap::new();
        fn search(
            vars: &[CVar],
            idx: usize,
            target_xs: &[CVar],
            target_ys: &[CVar],
            atoms: &[Atom],
            target_atoms: &BTreeSet<Atom>,
            assignment: &mut BTreeMap<CVar, CVar>,
        ) -> bool {
            if idx == vars.len() {
                return atoms.iter().all(|a| {
                    let mapped = a.map_vars(&mut |v| assignment[&v]);
                    target_atoms.contains(&mapped)
                });
            }
            let v = vars[idx];
            let candidates = if v.is_x() { target_xs } else { target_ys };
            for &c in candidates {
                assignment.insert(v, c);
                // Prune: atoms fully assigned so far must map into target.
                let ok = atoms.iter().all(|a| {
                    let avars = a.vars();
                    if avars.iter().all(|w| assignment.contains_key(w)) {
                        let mapped = a.map_vars(&mut |w| assignment[&w]);
                        target_atoms.contains(&mapped)
                    } else {
                        true
                    }
                });
                if ok
                    && search(
                        vars,
                        idx + 1,
                        target_xs,
                        target_ys,
                        atoms,
                        target_atoms,
                        assignment,
                    )
                {
                    return true;
                }
                assignment.remove(&v);
            }
            false
        }
        if search(
            &my_vars,
            0,
            &target_xs,
            &target_ys,
            &self.atoms,
            &target_atoms,
            &mut assignment,
        ) {
            Some(assignment)
        } else {
            None
        }
    }

    /// Core minimization: repeatedly removes atoms `a` such that a
    /// homomorphism `C → C∖{a}` exists (then `C ≡ C∖{a}` as clauses).
    pub fn minimize(&self) -> Clause {
        let mut cur = self.clone();
        'outer: loop {
            for i in 0..cur.atoms.len() {
                let mut atoms = cur.atoms.clone();
                atoms.remove(i);
                // Keep raw variable names during the homomorphism check;
                // canonicalize only when accepting the smaller clause.
                let smaller = Clause { atoms };
                if smaller.is_false() {
                    continue;
                }
                if cur.homomorphism_to(&smaller).is_some() {
                    cur = Clause::new(smaller.atoms);
                    continue 'outer;
                }
            }
            return cur;
        }
    }

    /// True iff every homomorphism `C → C` is a bijection — equivalently,
    /// here, the core equals the clause.
    pub fn is_minimized(&self) -> bool {
        self.minimize().atoms.len() == self.atoms.len()
    }

    /// Classifies the clause per Definition 2.3 (assumes it is minimized).
    pub fn shape(&self) -> ClauseShape {
        let has_r = self.mentions(Pred::R);
        let has_t = self.mentions(Pred::T);
        let xs: BTreeSet<CVar> = self.vars().into_iter().filter(CVar::is_x).collect();
        let ys: BTreeSet<CVar> = self.vars().into_iter().filter(CVar::is_y).collect();
        let s_by_y = |_: ()| -> Vec<BTreeSet<u32>> {
            let mut groups: BTreeMap<CVar, BTreeSet<u32>> = BTreeMap::new();
            for a in &self.atoms {
                if let Atom::S(i, _, y) = a {
                    groups.entry(*y).or_default().insert(*i);
                }
            }
            groups.into_values().collect()
        };
        let s_by_x = |_: ()| -> Vec<BTreeSet<u32>> {
            let mut groups: BTreeMap<CVar, BTreeSet<u32>> = BTreeMap::new();
            for a in &self.atoms {
                if let Atom::S(i, x, _) = a {
                    groups.entry(*x).or_default().insert(*i);
                }
            }
            groups.into_values().collect()
        };
        match (has_r, has_t, xs.len(), ys.len()) {
            (true, false, 1, 1) => {
                let j: BTreeSet<u32> = self
                    .atoms
                    .iter()
                    .filter_map(|a| match a {
                        Atom::S(i, _, _) => Some(*i),
                        _ => None,
                    })
                    .collect();
                if j.is_empty() {
                    ClauseShape::Other // bare R(x): degenerate
                } else {
                    ClauseShape::LeftI(j)
                }
            }
            (false, true, 1, 1) => {
                let j: BTreeSet<u32> = self
                    .atoms
                    .iter()
                    .filter_map(|a| match a {
                        Atom::S(i, _, _) => Some(*i),
                        _ => None,
                    })
                    .collect();
                if j.is_empty() {
                    ClauseShape::Other
                } else {
                    ClauseShape::RightI(j)
                }
            }
            (false, false, 1, 1) => ClauseShape::Middle(
                self.atoms
                    .iter()
                    .filter_map(|a| match a {
                        Atom::S(i, _, _) => Some(*i),
                        _ => None,
                    })
                    .collect(),
            ),
            (false, false, 1, _) if ys.len() > 1 => ClauseShape::LeftII(s_by_y(())),
            (false, false, _, 1) if xs.len() > 1 => ClauseShape::RightII(s_by_x(())),
            _ => ClauseShape::Other,
        }
    }

    /// True iff a left clause (Type I or II).
    pub fn is_left(&self) -> bool {
        matches!(self.shape(), ClauseShape::LeftI(_) | ClauseShape::LeftII(_))
    }

    /// True iff a right clause (Type I or II).
    pub fn is_right(&self) -> bool {
        matches!(
            self.shape(),
            ClauseShape::RightI(_) | ClauseShape::RightII(_)
        )
    }

    /// True iff a middle clause.
    pub fn is_middle(&self) -> bool {
        matches!(self.shape(), ClauseShape::Middle(_))
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return write!(f, "false");
        }
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " v ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "∀({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_shapes() {
        assert_eq!(
            Clause::middle([0, 1]).shape(),
            ClauseShape::Middle([0, 1].into())
        );
        assert_eq!(
            Clause::left_i([0, 2]).shape(),
            ClauseShape::LeftI([0, 2].into())
        );
        assert_eq!(
            Clause::right_i([1]).shape(),
            ClauseShape::RightI([1].into())
        );
        assert_eq!(
            Clause::left_ii(&[&[0], &[1]]).shape(),
            ClauseShape::LeftII(vec![[0].into(), [1].into()])
        );
        assert_eq!(
            Clause::right_ii(&[&[2], &[3]]).shape(),
            ClauseShape::RightII(vec![[2].into(), [3].into()])
        );
    }

    #[test]
    fn left_right_middle_predicates() {
        assert!(Clause::left_i([0]).is_left());
        assert!(!Clause::left_i([0]).is_right());
        assert!(Clause::right_ii(&[&[0], &[1]]).is_right());
        assert!(Clause::middle([0]).is_middle());
    }

    #[test]
    fn homomorphism_middle_to_middle() {
        // S_{0} → S_{0,1}: J ⊆ J' gives a homomorphism.
        let c1 = Clause::middle([0]);
        let c2 = Clause::middle([0, 1]);
        assert!(c1.homomorphism_to(&c2).is_some());
        assert!(c2.homomorphism_to(&c1).is_none());
    }

    #[test]
    fn homomorphism_middle_to_left_i() {
        // S_0(x,y) maps into R(x) ∨ S_0(x,y) ∨ S_1(x,y).
        let m = Clause::middle([0]);
        let l = Clause::left_i([0, 1]);
        assert!(m.homomorphism_to(&l).is_some());
        // But the left clause cannot map back (R has no target).
        assert!(l.homomorphism_to(&m).is_none());
    }

    #[test]
    fn homomorphism_into_type_ii_picks_branch() {
        // Middle S_1 maps into ∀y S_{0,1} ∨ ∀y S_{1,2} via either branch.
        let m = Clause::middle([1]);
        let l = Clause::left_ii(&[&[0, 1], &[1, 2]]);
        assert!(m.homomorphism_to(&l).is_some());
        // Middle S_3 does not.
        let m2 = Clause::middle([3]);
        assert!(m2.homomorphism_to(&l).is_none());
    }

    #[test]
    fn homomorphism_left_ii_to_right_ii_requires_union() {
        // Left II ∨_ℓ ∀y S_{J_ℓ}(x,y_ℓ) maps into right II iff some right
        // subclause contains the union of all left subclauses (x maps to a
        // single x_k).
        let l = Clause::left_ii(&[&[0], &[1]]);
        let r_good = Clause::right_ii(&[&[0, 1, 2], &[3]]);
        let r_bad = Clause::right_ii(&[&[0], &[1]]);
        assert!(l.homomorphism_to(&r_good).is_some());
        assert!(l.homomorphism_to(&r_bad).is_none());
    }

    #[test]
    fn minimize_drops_absorbed_subclause() {
        // ∀y S_{0}(x,y0) ∨ ∀y S_{0,1}(x,y1): the first subclause implies the
        // second, so the clause minimizes to ∀y S_{0,1} — i.e. J maximal kept.
        let c = Clause::left_ii(&[&[0], &[0, 1]]);
        let m = c.minimize();
        assert_eq!(m.shape(), ClauseShape::Middle([0, 1].into()));
        assert!(!c.is_minimized());
    }

    #[test]
    fn minimize_keeps_antichain() {
        let c = Clause::left_ii(&[&[0, 1], &[1, 2]]);
        assert!(c.is_minimized());
        assert_eq!(c.minimize(), c);
    }

    #[test]
    fn drop_pred_rewrites() {
        let c = Clause::left_i([0, 1]);
        let without_r = c.drop_pred(Pred::R);
        assert_eq!(without_r.shape(), ClauseShape::Middle([0, 1].into()));
        let without_s0 = c.drop_pred(Pred::S(0));
        assert_eq!(without_s0.shape(), ClauseShape::LeftI([1].into()));
        // Dropping everything gives the false clause.
        let f = Clause::middle([0]).drop_pred(Pred::S(0));
        assert!(f.is_false());
    }

    #[test]
    fn symbols_and_vars() {
        let c = Clause::left_ii(&[&[0], &[1]]);
        assert_eq!(c.symbols(), [Pred::S(0), Pred::S(1)].into_iter().collect());
        assert_eq!(c.vars().len(), 3); // x0, y0, y1
    }

    #[test]
    fn self_homomorphism_always_exists() {
        for c in [
            Clause::middle([0, 1]),
            Clause::left_i([0]),
            Clause::left_ii(&[&[0, 1], &[2]]),
        ] {
            assert!(c.homomorphism_to(&c).is_some());
        }
    }
}
