//! A text format for bipartite ∀CNF queries, round-tripping with `Display`.
//!
//! Grammar (whitespace-insensitive; all variables universally quantified):
//!
//! ```text
//! query  := clause ( '&' clause )*          -- conjunction of clauses
//! clause := '[' disj ']' | disj             -- brackets optional
//! disj   := atom ( ('v' | '|') atom )*      -- disjunction of atoms
//! atom   := 'R(' xvar ')'
//!         | 'T(' yvar ')'
//!         | 'S' INT '(' xvar ',' yvar ')'
//! xvar   := 'x' INT        yvar := 'y' INT
//! ```
//!
//! Examples:
//!
//! ```text
//! [R(x0) v S0(x0,y0)] & [S0(x0,y0) v T(y0)]                 -- H1
//! [S0(x0,y0) v S1(x0,y1)] & [S0(x0,y0) v S2(x0,y0)]         -- Type II left
//! ```

use crate::atom::{Atom, CVar};
use crate::clause::Clause;
use crate::query::BipartiteQuery;
use std::fmt;

/// A parse failure with position and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub position: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input: input.as_bytes(),
            pos: 0,
        }
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            position: self.pos,
            message: message.into(),
        })
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.input.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            self.error(format!("expected '{}'", c as char))
        }
    }

    fn try_eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn integer(&mut self) -> Result<u32, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if self.pos == start {
            return self.error("expected a number");
        }
        std::str::from_utf8(&self.input[start..self.pos])
            .unwrap()
            .parse::<u32>()
            .map_err(|_| ParseError {
                position: start,
                message: "number too large".into(),
            })
    }

    fn variable(&mut self, sort: u8) -> Result<CVar, ParseError> {
        match self.peek() {
            Some(c) if c == sort => {
                self.pos += 1;
                let idx = self.integer()?;
                if idx > u8::MAX as u32 {
                    return self.error("variable index too large");
                }
                Ok(if sort == b'x' {
                    CVar::X(idx as u8)
                } else {
                    CVar::Y(idx as u8)
                })
            }
            _ => self.error(format!("expected a '{}' variable", sort as char)),
        }
    }

    fn atom(&mut self) -> Result<Atom, ParseError> {
        match self.peek() {
            Some(b'R') => {
                self.pos += 1;
                self.eat(b'(')?;
                let v = self.variable(b'x')?;
                self.eat(b')')?;
                Ok(Atom::R(v))
            }
            Some(b'T') => {
                self.pos += 1;
                self.eat(b'(')?;
                let v = self.variable(b'y')?;
                self.eat(b')')?;
                Ok(Atom::T(v))
            }
            Some(b'S') => {
                self.pos += 1;
                let idx = self.integer()?;
                self.eat(b'(')?;
                let x = self.variable(b'x')?;
                self.eat(b',')?;
                let y = self.variable(b'y')?;
                self.eat(b')')?;
                Ok(Atom::S(idx, x, y))
            }
            _ => self.error("expected an atom (R, T, or S<i>)"),
        }
    }

    fn clause(&mut self) -> Result<Clause, ParseError> {
        let bracketed = self.try_eat(b'[');
        let mut atoms = vec![self.atom()?];
        loop {
            match self.peek() {
                Some(b'v') => {
                    self.pos += 1;
                    atoms.push(self.atom()?);
                }
                Some(b'|') => {
                    self.pos += 1;
                    atoms.push(self.atom()?);
                }
                _ => break,
            }
        }
        if bracketed {
            self.eat(b']')?;
        }
        Ok(Clause::new(atoms))
    }

    fn query(&mut self) -> Result<BipartiteQuery, ParseError> {
        let mut clauses = vec![self.clause()?];
        while self.try_eat(b'&') {
            clauses.push(self.clause()?);
        }
        self.skip_ws();
        if self.pos != self.input.len() {
            return self.error("trailing input");
        }
        Ok(BipartiteQuery::new(clauses))
    }
}

/// Parses a query from the textual format (see module docs). The result is
/// minimized and redundancy-free, like any [`BipartiteQuery`].
pub fn parse_query(input: &str) -> Result<BipartiteQuery, ParseError> {
    Parser::new(input).query()
}

/// Parses a single universally-quantified clause.
pub fn parse_clause(input: &str) -> Result<Clause, ParseError> {
    let mut p = Parser::new(input);
    let c = p.clause()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return p.error("trailing input");
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::catalog;

    #[test]
    fn parse_h1() {
        let q = parse_query("[R(x0) v S0(x0,y0)] & [S0(x0,y0) v T(y0)]").unwrap();
        assert_eq!(q, catalog::h1());
    }

    #[test]
    fn parse_without_brackets_and_with_pipes() {
        let q = parse_query("R(x0) | S0(x0,y0) & S0(x0,y0) | T(y0)").unwrap();
        assert_eq!(q, catalog::h1());
    }

    #[test]
    fn parse_type_ii_clause() {
        let q = parse_query("[S0(x0,y0) v S1(x0,y1)] & [S2(x0,y0) v T(y0)]").unwrap();
        assert_eq!(q.left_clauses().len(), 1);
        assert_eq!(q.right_clauses().len(), 1);
    }

    #[test]
    fn display_roundtrip_catalog() {
        for (name, q) in catalog::unsafe_catalog()
            .into_iter()
            .chain(catalog::safe_catalog())
        {
            // Strip the outer query display into the parser format.
            let text = q.to_string();
            let parsed = parse_query(&text)
                .unwrap_or_else(|e| panic!("{name}: failed to parse back {text:?}: {e}"));
            assert_eq!(parsed, q, "{name}");
        }
    }

    #[test]
    fn whitespace_insensitive() {
        let a = parse_query("R(x0)vS0(x0,y0)&S0(x0,y0)vT(y0)").unwrap();
        let b = parse_query("  R(x0)  v  S0(x0,y0)\n&\tS0(x0,y0) v T(y0) ").unwrap();
        assert_eq!(a, b);
        assert_eq!(a, catalog::h1());
    }

    #[test]
    fn errors_are_positioned() {
        let e = parse_query("R(x0) v Q(x0)").unwrap_err();
        assert!(e.position >= 8, "{e}");
        assert!(e.message.contains("atom"));
        let e2 = parse_query("R(y0)").unwrap_err();
        assert!(e2.message.contains("'x' variable"));
        let e3 = parse_query("[R(x0)").unwrap_err();
        assert!(e3.message.contains("']'"));
        let e4 = parse_query("R(x0) extra").unwrap_err();
        assert!(e4.message.contains("trailing"));
    }

    #[test]
    fn parse_clause_standalone() {
        let c = parse_clause("S0(x0,y0) v S1(x0,y0)").unwrap();
        assert_eq!(c, Clause::middle([0, 1]));
    }

    #[test]
    fn parser_minimizes_like_constructor() {
        // Redundant clause dropped, subsumed subclause minimized.
        let q = parse_query("[S0(x0,y0)] & [S0(x0,y0) v S1(x0,y0)]").unwrap();
        assert_eq!(q.clauses().len(), 1);
    }

    #[test]
    fn large_symbol_indices() {
        let q = parse_query("S42(x0,y0) v S7(x0,y0)").unwrap();
        assert_eq!(q.binary_symbols(), [7u32, 42].into_iter().collect());
    }
}
