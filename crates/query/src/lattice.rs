//! The CNF-lattice with Möbius function of Definition C.6.
//!
//! Given formulas `F = {F₁, …, F_m}`, each subset `α ⊆ [m]` induces the
//! conjunction `F_α = ∧_{i∈α} F_i`. The *closure* of `α` is
//! `ᾱ = {i | F_α ⇒ F_i}`; the lattice `L̂(F)` consists of all closed sets
//! ordered by **reverse** inclusion (top element `1̂ = ∅`). The Möbius
//! function is `µ(1̂) = 1` and `µ(α) = −Σ_{β > α} µ(β)`.
//!
//! The paper's Type-II reduction sums over the *strict support*
//! `L₀ = {α closed | µ(α) ≠ 0} ∖ {1̂}` (Definition C.8), and uses the Möbius
//! inversion formula
//! `Pr(Y₁ ∨ … ∨ Y_m) = −Σ_{α < 1̂} µ(α)·Pr(Y_α)`.
//!
//! Here the formulas are monotone CNFs ([`gfomc_logic::Cnf`]); implication
//! between monotone CNFs is decidable by clause subsumption (a minimal
//! monotone CNF implies a clause iff one of its clauses subsumes it).

use gfomc_arith::Integer;
use gfomc_logic::Cnf;
use std::collections::BTreeSet;

/// Decides `a ⇒ b` for monotone CNFs: every clause of `b` must be subsumed
/// by some clause of `a`.
pub fn cnf_implies(a: &Cnf, b: &Cnf) -> bool {
    if a.is_false() {
        return true;
    }
    b.clauses()
        .iter()
        .all(|cb| a.clauses().iter().any(|ca| ca.subsumes(cb)))
}

/// One element of the lattice: a closed set with its conjunction and Möbius
/// value.
#[derive(Clone, Debug)]
pub struct LatticeElement {
    /// The closed subset of `[m]` (indices into the generating formulas).
    pub set: BTreeSet<usize>,
    /// The conjunction `F_α` (minimized).
    pub formula: Cnf,
    /// The Möbius value `µ(α)`.
    pub mobius: Integer,
}

/// The lattice `L̂(F)` of Definition C.6.
#[derive(Clone, Debug)]
pub struct MobiusLattice {
    /// All closed sets, sorted by cardinality (so `1̂ = ∅` comes first).
    pub elements: Vec<LatticeElement>,
}

impl MobiusLattice {
    /// Builds the lattice of the given formulas. `m = formulas.len()` must be
    /// small (the construction enumerates all `2^m` subsets).
    pub fn build(formulas: &[Cnf]) -> Self {
        let m = formulas.len();
        assert!(m <= 16, "lattice construction is exponential in m");
        // Compute the closure of every subset; collect distinct closed sets.
        let mut closed: Vec<(BTreeSet<usize>, Cnf)> = Vec::new();
        let mut seen: BTreeSet<BTreeSet<usize>> = BTreeSet::new();
        for mask in 0u32..(1u32 << m) {
            let alpha: BTreeSet<usize> = (0..m).filter(|i| mask >> i & 1 == 1).collect();
            let f_alpha = Cnf::and_all(alpha.iter().map(|&i| formulas[i].clone()));
            let closure: BTreeSet<usize> = (0..m)
                .filter(|&i| cnf_implies(&f_alpha, &formulas[i]))
                .collect();
            if seen.insert(closure.clone()) {
                let f_closure = Cnf::and_all(closure.iter().map(|&i| formulas[i].clone()));
                debug_assert_eq!(f_closure, f_alpha, "closure changes formula");
                closed.push((closure, f_alpha));
            }
        }
        // Sort by cardinality so the top 1̂ = ∅ comes first; Möbius recursion
        // then proceeds top-down (µ(α) = −Σ over closed strict subsets of α).
        closed.sort_by_key(|(s, _)| (s.len(), s.clone()));
        let mut elements: Vec<LatticeElement> = Vec::with_capacity(closed.len());
        for (set, formula) in closed {
            let mobius = if set.is_empty() {
                Integer::one()
            } else {
                // β > α in the reverse-inclusion order means β ⊊ α.
                let mut sum = Integer::zero();
                for e in &elements {
                    if e.set.is_subset(&set) && e.set != set {
                        sum += &e.mobius;
                    }
                }
                // Strict supersets in reverse order are strict subsets as
                // sets; all of them are already placed (sorted by size), but
                // only those that are subsets of `set` participate.
                -sum
            };
            elements.push(LatticeElement {
                set,
                formula,
                mobius,
            });
        }
        MobiusLattice { elements }
    }

    /// The top element `1̂` (the empty closed set; `F_1̂ = F₁ ∨ … ∨ F_m` by
    /// the paper's convention).
    pub fn top(&self) -> &LatticeElement {
        &self.elements[0]
    }

    /// The support `L(F)`: elements with nonzero Möbius value.
    pub fn support(&self) -> Vec<&LatticeElement> {
        self.elements
            .iter()
            .filter(|e| !e.mobius.is_zero())
            .collect()
    }

    /// The strict support `L₀(F) = L(F) ∖ {1̂}`.
    pub fn strict_support(&self) -> Vec<&LatticeElement> {
        self.elements
            .iter()
            .filter(|e| !e.mobius.is_zero() && !e.set.is_empty())
            .collect()
    }

    /// Looks up an element by its closed set.
    pub fn element(&self, set: &BTreeSet<usize>) -> Option<&LatticeElement> {
        self.elements.iter().find(|e| &e.set == set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfomc_logic::{Clause, Var};

    fn conj(vars: &[u32]) -> Cnf {
        // A conjunction of unit clauses Z_i.
        Cnf::new(vars.iter().map(|&v| Clause::new([Var(v)])))
    }

    fn set(xs: &[usize]) -> BTreeSet<usize> {
        xs.iter().copied().collect()
    }

    #[test]
    fn cnf_implication_by_subsumption() {
        let a = Cnf::new([Clause::new([Var(0)])]);
        let b = Cnf::new([Clause::new([Var(0), Var(1)])]);
        assert!(cnf_implies(&a, &b));
        assert!(!cnf_implies(&b, &a));
        assert!(cnf_implies(&Cnf::bottom(), &a));
        assert!(cnf_implies(&a, &Cnf::top()));
    }

    #[test]
    fn example_c7_first() {
        // Y1 = Z1Z2, Y2 = Z1Z3, Y3 = Z2Z3 (paper Example C.7, first part):
        // lattice {∅,1,2,3,123}, µ(∅)=1, µ(i)=-1, µ(123)=2.
        let ys = [conj(&[1, 2]), conj(&[1, 3]), conj(&[2, 3])];
        let lat = MobiusLattice::build(&ys);
        assert_eq!(lat.elements.len(), 5);
        assert_eq!(lat.element(&set(&[])).unwrap().mobius, Integer::one());
        for i in 0..3 {
            assert_eq!(
                lat.element(&set(&[i])).unwrap().mobius,
                Integer::from(-1i64)
            );
        }
        assert_eq!(
            lat.element(&set(&[0, 1, 2])).unwrap().mobius,
            Integer::from(2i64)
        );
        // Pairwise conjunctions all close to {0,1,2}: no 2-element closed sets.
        assert!(lat.element(&set(&[0, 1])).is_none());
    }

    #[test]
    fn example_c7_second() {
        // Y1 = Z1Z2, Y2 = Z2Z3, Y3 = Z3Z4:
        // L̂ = {∅,1,2,3,12,23,123}; µ(123) = 0, so support drops it.
        let ys = [conj(&[1, 2]), conj(&[2, 3]), conj(&[3, 4])];
        let lat = MobiusLattice::build(&ys);
        assert_eq!(lat.elements.len(), 7);
        assert_eq!(lat.element(&set(&[0, 1])).unwrap().mobius, Integer::one());
        assert_eq!(lat.element(&set(&[1, 2])).unwrap().mobius, Integer::one());
        // {0,2} closes to {0,1,2}? No: Z1Z2 ∧ Z3Z4 does not imply Z2Z3...
        // actually it does: Z1Z2Z3Z4 ⇒ Z2Z3. So {0,2} closes to {0,1,2}.
        assert!(lat.element(&set(&[0, 2])).is_none());
        assert_eq!(
            lat.element(&set(&[0, 1, 2])).unwrap().mobius,
            Integer::zero()
        );
        let support_sets: Vec<BTreeSet<usize>> =
            lat.support().into_iter().map(|e| e.set.clone()).collect();
        assert_eq!(support_sets.len(), 6);
        assert!(!support_sets.contains(&set(&[0, 1, 2])));
    }

    #[test]
    fn mobius_sums_to_zero_below_top() {
        // In any lattice with ≥ 2 elements, Σ_α µ(α) over all closed α = 0
        // (definition unrolled at the bottom element).
        let ys = [conj(&[1, 2]), conj(&[2, 3]), conj(&[3, 4])];
        let lat = MobiusLattice::build(&ys);
        let bottom = lat.elements.last().unwrap();
        let total: Integer = lat
            .elements
            .iter()
            .filter(|e| e.set.is_subset(&bottom.set))
            .fold(Integer::zero(), |acc, e| acc + &e.mobius);
        assert!(total.is_zero());
    }

    #[test]
    fn singleton_lattice() {
        let ys = [conj(&[1])];
        let lat = MobiusLattice::build(&ys);
        assert_eq!(lat.elements.len(), 2);
        assert_eq!(lat.strict_support().len(), 1);
        assert_eq!(
            lat.element(&set(&[0])).unwrap().mobius,
            Integer::from(-1i64)
        );
    }

    #[test]
    fn duplicate_formulas_collapse() {
        let ys = [conj(&[1]), conj(&[1])];
        let lat = MobiusLattice::build(&ys);
        // {} and {0,1} are the only closed sets ({0} closes to {0,1}).
        assert_eq!(lat.elements.len(), 2);
    }
}
