//! Atoms and typed variables of bipartite ∀CNF queries.
//!
//! The paper's restricted vocabulary (§2) has one unary symbol `R` over the
//! left domain, one unary symbol `T` over the right domain, and binary
//! symbols `S₁, …, S_p` over left × right. Logical variables are *sorted*:
//! `x`-variables range over the left domain, `y`-variables over the right,
//! so homomorphisms must preserve sorts.

use std::fmt;

/// A relational symbol of the bipartite vocabulary.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Pred {
    /// The left unary symbol `R(x)`.
    R,
    /// The right unary symbol `T(y)`.
    T,
    /// A binary symbol `S_i(x, y)`.
    S(u32),
}

impl Pred {
    /// True iff this is a binary symbol.
    pub fn is_binary(&self) -> bool {
        matches!(self, Pred::S(_))
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::R => write!(f, "R"),
            Pred::T => write!(f, "T"),
            Pred::S(i) => write!(f, "S{i}"),
        }
    }
}

/// A sorted logical variable within a clause.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum CVar {
    /// A left-domain variable `x_i`.
    X(u8),
    /// A right-domain variable `y_i`.
    Y(u8),
}

impl CVar {
    /// True iff a left-domain (`x`) variable.
    pub fn is_x(&self) -> bool {
        matches!(self, CVar::X(_))
    }

    /// True iff a right-domain (`y`) variable.
    pub fn is_y(&self) -> bool {
        matches!(self, CVar::Y(_))
    }
}

impl fmt::Display for CVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CVar::X(i) => write!(f, "x{i}"),
            CVar::Y(i) => write!(f, "y{i}"),
        }
    }
}

/// An atom occurring in a clause: `R(x)`, `T(y)`, or `S_i(x, y)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Atom {
    /// `R(x)`.
    R(CVar),
    /// `T(y)`.
    T(CVar),
    /// `S_i(x, y)`.
    S(u32, CVar, CVar),
}

impl Atom {
    /// The predicate symbol.
    pub fn pred(&self) -> Pred {
        match self {
            Atom::R(_) => Pred::R,
            Atom::T(_) => Pred::T,
            Atom::S(i, _, _) => Pred::S(*i),
        }
    }

    /// The variables of the atom, in argument order.
    pub fn vars(&self) -> Vec<CVar> {
        match self {
            Atom::R(v) | Atom::T(v) => vec![*v],
            Atom::S(_, x, y) => vec![*x, *y],
        }
    }

    /// Checks sort constraints: `R` takes an `x`, `T` takes a `y`, `S` takes
    /// an `x` then a `y`.
    pub fn is_well_sorted(&self) -> bool {
        match self {
            Atom::R(v) => v.is_x(),
            Atom::T(v) => v.is_y(),
            Atom::S(_, x, y) => x.is_x() && y.is_y(),
        }
    }

    /// Applies a variable mapping.
    pub fn map_vars(&self, f: &mut impl FnMut(CVar) -> CVar) -> Atom {
        match self {
            Atom::R(v) => Atom::R(f(*v)),
            Atom::T(v) => Atom::T(f(*v)),
            Atom::S(i, x, y) => Atom::S(*i, f(*x), f(*y)),
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::R(v) => write!(f, "R({v})"),
            Atom::T(v) => write!(f, "T({v})"),
            Atom::S(i, x, y) => write!(f, "S{i}({x},{y})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_checks() {
        assert!(Atom::R(CVar::X(0)).is_well_sorted());
        assert!(!Atom::R(CVar::Y(0)).is_well_sorted());
        assert!(Atom::T(CVar::Y(1)).is_well_sorted());
        assert!(!Atom::T(CVar::X(1)).is_well_sorted());
        assert!(Atom::S(0, CVar::X(0), CVar::Y(0)).is_well_sorted());
        assert!(!Atom::S(0, CVar::Y(0), CVar::X(0)).is_well_sorted());
    }

    #[test]
    fn preds_and_vars() {
        let a = Atom::S(3, CVar::X(0), CVar::Y(2));
        assert_eq!(a.pred(), Pred::S(3));
        assert_eq!(a.vars(), vec![CVar::X(0), CVar::Y(2)]);
        assert!(a.pred().is_binary());
        assert!(!Pred::R.is_binary());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Atom::S(1, CVar::X(0), CVar::Y(1)).to_string(), "S1(x0,y1)");
        assert_eq!(Atom::R(CVar::X(0)).to_string(), "R(x0)");
    }

    #[test]
    fn map_vars_substitutes() {
        let a = Atom::S(0, CVar::X(0), CVar::Y(0));
        let b = a.map_vars(&mut |v| match v {
            CVar::Y(0) => CVar::Y(5),
            other => other,
        });
        assert_eq!(b, Atom::S(0, CVar::X(0), CVar::Y(5)));
    }
}
