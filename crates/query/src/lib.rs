//! # gfomc-query
//!
//! Bipartite ∀CNF queries — the duals of UCQs studied by Kenig & Suciu
//! (PODS 2021, Definition 2.3):
//!
//! * [`atom`] — the sorted vocabulary `R(x)`, `T(y)`, `S_i(x,y)`;
//! * [`clause`] — universally quantified clauses with homomorphisms, core
//!   minimization, and the Left/Middle/Right Type I/II shape taxonomy;
//! * [`query`] — whole queries with redundancy removal, the `Q[S := 0/1]`
//!   rewritings of Lemma 2.7, the `G_i`/`H_j` DNF decompositions of
//!   Eqs. (47)–(49), and a catalog of queries from the paper;
//! * [`lattice`] — the CNF lattice with Möbius function of Definition C.6,
//!   reproducing Example C.7.

pub mod atom;
pub mod clause;
pub mod lattice;
pub mod parser;
pub mod query;

pub use atom::{Atom, CVar, Pred};
pub use clause::{Clause, ClauseShape};
pub use lattice::{cnf_implies, LatticeElement, MobiusLattice};
pub use parser::{parse_clause, parse_query, ParseError};
pub use query::{catalog, BipartiteQuery, PartType, QueryType};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    /// Random middle/left/right clauses over up to 5 binary symbols.
    fn arb_clause() -> impl Strategy<Value = Clause> {
        let arb_j = proptest::collection::btree_set(0u32..5, 1..4);
        prop_oneof![
            arb_j.clone().prop_map(Clause::middle),
            arb_j.clone().prop_map(Clause::left_i),
            arb_j.clone().prop_map(Clause::right_i),
            (arb_j.clone(), arb_j.clone()).prop_map(|(a, b)| {
                let a: Vec<u32> = a.into_iter().collect();
                let b: Vec<u32> = b.into_iter().collect();
                Clause::left_ii(&[&a, &b])
            }),
        ]
    }

    fn arb_query() -> impl Strategy<Value = BipartiteQuery> {
        proptest::collection::vec(arb_clause(), 1..4).prop_map(BipartiteQuery::new)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn construction_is_idempotent(q in arb_query()) {
            let q2 = BipartiteQuery::new(q.clauses().iter().cloned());
            prop_assert_eq!(q2, q);
        }

        #[test]
        fn clause_minimization_idempotent(c in arb_clause()) {
            let m = c.minimize();
            prop_assert_eq!(m.minimize(), m);
        }

        #[test]
        fn homomorphism_is_reflexive_and_transitive(
            a in arb_clause(), b in arb_clause(), c in arb_clause()
        ) {
            prop_assert!(a.homomorphism_to(&a).is_some());
            if a.homomorphism_to(&b).is_some() && b.homomorphism_to(&c).is_some() {
                prop_assert!(a.homomorphism_to(&c).is_some());
            }
        }

        #[test]
        fn set_symbol_removes_symbol(q in arb_query(), s in 0u32..5, v in any::<bool>()) {
            let q2 = q.set_symbol(Pred::S(s), v);
            prop_assert!(!q2.symbols().contains(&Pred::S(s)));
        }

        #[test]
        fn set_symbol_commutes(q in arb_query(), s1 in 0u32..5, s2 in 0u32..5, v1 in any::<bool>(), v2 in any::<bool>()) {
            prop_assume!(s1 != s2);
            let a = q.set_symbol(Pred::S(s1), v1).set_symbol(Pred::S(s2), v2);
            let b = q.set_symbol(Pred::S(s2), v2).set_symbol(Pred::S(s1), v1);
            prop_assert_eq!(a, b);
        }

        #[test]
        fn display_parse_roundtrip(q in arb_query()) {
            prop_assume!(!q.is_true() && !q.is_false());
            let text = q.to_string();
            let back = parse_query(&text).unwrap();
            prop_assert_eq!(back, q);
        }

        #[test]
        fn symbols_union_of_clause_symbols(q in arb_query()) {
            let direct: BTreeSet<Pred> =
                q.clauses().iter().flat_map(|c| c.symbols()).collect();
            prop_assert_eq!(q.symbols(), direct);
        }
    }
}
