//! Error-path coverage for `query::parser` — the serving layer maps every
//! [`ParseError`] to a 400 response, so the parser's contract is: typed
//! error or parsed query, never a panic, on *any* input bytes.

use gfomc_query::parser::{parse_clause, parse_query, ParseError};
use proptest::prelude::*;

#[test]
fn empty_and_blank_inputs_are_errors() {
    for input in ["", "   ", "\t\n", "[]", "[ ]"] {
        let err = parse_query(input).unwrap_err();
        assert!(err.position <= input.len(), "{input:?}: {err}");
    }
}

#[test]
fn malformed_clauses_name_the_problem() {
    let cases: &[(&str, &str)] = &[
        // Unknown predicate letter.
        ("R(x0) v Q(x0)", "atom"),
        // Unary symbols take the matching side's variable.
        ("R(y0)", "'x' variable"),
        ("T(x0)", "'y' variable"),
        // Binary atoms need both variables in order.
        ("S0(y0,x0)", "'x' variable"),
        ("S0(x0)", ","),
        // Unclosed delimiters.
        ("[R(x0)", "']'"),
        ("R(x0", "')'"),
        ("S0(x0,y0", "')'"),
        // Missing pieces around connectives.
        ("R(x0) v", "atom"),
        ("R(x0) &", "atom"),
        ("& R(x0)", "atom"),
        ("v R(x0)", "atom"),
    ];
    for (input, needle) in cases {
        let err = parse_query(input).unwrap_err();
        assert!(
            err.message.contains(needle),
            "{input:?}: expected {needle:?} in {:?}",
            err.message
        );
    }
}

#[test]
fn trailing_garbage_is_rejected_at_its_position() {
    for (input, after) in [
        ("R(x0) extra", 6),
        ("R(x0) v S0(x0,y0)]", 17),
        ("[R(x0)] junk", 8),
        ("S0(x0,y0) & T(y0) &", 18),
    ] {
        let err = parse_query(input).unwrap_err();
        assert!(
            err.position >= after,
            "{input:?}: error at {} but garbage starts at {after}",
            err.position
        );
    }
}

#[test]
fn clause_parser_shares_the_error_contract() {
    for input in ["", "R(x0) & T(y0)", "S0(x0,y0) v", "Z(x0)"] {
        let _: ParseError = parse_clause(input).unwrap_err();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Fuzz-ish: arbitrary bytes (lossily decoded) must yield `Ok` or a
    /// positioned `Err` — the parser can never panic or index out of
    /// bounds, whatever a network client throws at it.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let text = String::from_utf8_lossy(&bytes);
        match parse_query(&text) {
            Ok(q) => {
                // Anything that parses must round-trip through Display
                // (the wire request format relies on this).
                let again = parse_query(&q.to_string());
                prop_assert!(again.is_ok(), "round-trip failed for {text:?}");
            }
            Err(e) => prop_assert!(e.position <= text.len()),
        }
    }

    /// The same contract over inputs biased toward near-valid syntax,
    /// which reach much deeper into the grammar than uniform bytes.
    #[test]
    fn near_grammar_soup_never_panics(tokens in proptest::collection::vec(0usize..12, 0..24)) {
        let vocab = ["R(x0)", "T(y0)", "S0(x0,y0)", "S1(x0,y1)", " v ", " & ",
                     "[", "]", "(", ")", ",", "x0"];
        let text: String = tokens.iter().map(|&t| vocab[t]).collect();
        match parse_query(&text) {
            Ok(_) => {}
            Err(e) => prop_assert!(e.position <= text.len()),
        }
    }
}
