//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate provides the (small, deterministic) subset of the
//! `rand 0.8` API that the integration suites use: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is SplitMix64 — statistically fine for randomized test
//! inputs, explicitly **not** cryptographic. Sequences are stable across
//! platforms and releases of this workspace so that seeded tests stay
//! reproducible.

/// A source of random `u64` words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from their full value range by
/// [`Rng::gen`]. Stand-in for sampling from rand's `Standard` distribution.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts, mirroring `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample from `T`'s full value range.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 random bits → uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator, stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x: u64 = a.gen();
            assert_eq!(x, b.gen::<u64>());
        }
        for _ in 0..1000 {
            let x = a.gen_range(0..4u32);
            assert!(x < 4);
            let y = a.gen_range(-3..=3i64);
            assert!((-3..=3).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(!(0..50).any(|_| rng.gen_bool(0.0)));
        assert!((0..50).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
