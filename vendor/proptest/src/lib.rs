//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate reimplements the subset of the proptest 1.x API that
//! the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with the `#![proptest_config(..)]` inner
//!   attribute) and the [`prop_assert!`] / [`prop_assert_eq!`] /
//!   [`prop_assert_ne!`] assertions;
//! * the [`strategy::Strategy`] trait with `prop_map`, implemented for
//!   integer ranges, tuples, [`strategy::Just`], and [`strategy::Union`]
//!   (the target of [`prop_oneof!`]);
//! * [`arbitrary::any`] for the primitive types;
//! * [`collection::vec`] / [`collection::btree_set`] /
//!   [`collection::btree_map`].
//!
//! Differences from real proptest, chosen deliberately for an offline,
//! deterministic test suite: inputs are drawn from a fixed-seed SplitMix64
//! generator (every run explores the same cases), and failing cases are
//! reported but **not shrunk**.

pub mod test_runner {
    //! Deterministic case generation.

    /// The per-`proptest!` configuration. Exported from the prelude as
    /// `ProptestConfig`, matching real proptest.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Real proptest defaults to 256; this offline stand-in defaults
            // lower because several properties here cross-check against
            // exponential brute-force oracles.
            Config { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 generator feeding every strategy.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The fixed-seed generator used by the [`crate::proptest!`] macro.
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x9A9C_B3A1_5EED_C0DE,
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform sample from `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "cannot sample below 0");
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of type [`Strategy::Value`].
    ///
    /// Unlike real proptest there is no value tree / shrinking: a strategy
    /// simply produces a fresh value from the deterministic RNG.
    pub trait Strategy {
        type Value;

        /// Draw one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map {
                source: self,
                map: f,
            }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy, as produced by [`Strategy::boxed`].
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    /// Helper used by [`crate::prop_oneof!`] to erase each branch's type.
    pub fn boxed_branch<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        Box::new(s)
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.new_value(rng))
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between several strategies for the same value type;
    /// the target of [`crate::prop_oneof!`].
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one branch");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].new_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
}

pub mod arbitrary {
    //! [`any`] — the default strategy for a type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T` (full value range for primitives).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::{BTreeMap, BTreeSet};

    /// A range of collection sizes; built from `usize` (exact) or
    /// `Range<usize>` (half-open), mirroring proptest's `SizeRange`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl SizeRange {
        fn pick(self, rng: &mut TestRng) -> usize {
            assert!(self.lo < self.hi_exclusive, "empty size range");
            self.lo + rng.below((self.hi_exclusive - self.lo) as u64) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// `Vec`s of `size` values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// `BTreeSet`s of `size` distinct values drawn from `element`.
    ///
    /// If `element`'s value space is too small to reach the requested
    /// minimum size, generation panics after a bounded number of attempts
    /// rather than looping forever.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target {
                set.insert(self.element.new_value(rng));
                attempts += 1;
                if attempts > 100 * target.max(1) && set.len() >= self.size.lo {
                    break;
                }
                assert!(
                    attempts <= 10_000,
                    "btree_set strategy cannot reach minimum size {}",
                    self.size.lo
                );
            }
            set
        }
    }

    /// `BTreeMap`s of `size` distinct keys from `key` with values from
    /// `value`.
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut map = BTreeMap::new();
            let mut attempts = 0usize;
            while map.len() < target {
                map.insert(self.key.new_value(rng), self.value.new_value(rng));
                attempts += 1;
                if attempts > 100 * target.max(1) && map.len() >= self.size.lo {
                    break;
                }
                assert!(
                    attempts <= 10_000,
                    "btree_map strategy cannot reach minimum size {}",
                    self.size.lo
                );
            }
            map
        }
    }
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }` item
/// becomes a test that checks `body` against `cases` generated inputs.
///
/// Accepts an optional leading `#![proptest_config(expr)]` like real
/// proptest. On failure the test aborts at the first failing case, printing
/// the case number to stderr before propagating the panic; since the
/// generator seed is fixed, rerunning reproduces the same inputs (there is
/// no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = (<$crate::test_runner::Config as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (
        config = ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic();
                for __case in 0..__config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::new_value(&($strat), &mut __rng);
                    )+
                    let __run = || { $body };
                    let __result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(__run),
                    );
                    if let ::std::result::Result::Err(__panic) = __result {
                        eprintln!(
                            "proptest: case {} of {} failed (fixed seed: rerun regenerates the same inputs)",
                            __case, __config.cases
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
}

/// Skip the current generated case when its precondition fails. Only
/// meaningful inside [`proptest!`], whose per-case closure this returns
/// from; skipped cases still count toward the configured case total.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// `assert!` under a name the proptest API exposes inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// `assert_eq!` under a name the proptest API exposes inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

/// `assert_ne!` under a name the proptest API exposes inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*)
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed_branch($strat)),+
        ])
    };
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(a in 0u32..8, b in -5i64..=5) {
            prop_assert!(a < 8);
            prop_assert!((-5..=5).contains(&b));
        }

        #[test]
        fn tuples_and_maps_compose(v in crate::collection::vec((0u8..3, 1i32..4), 0..5)) {
            prop_assert!(v.len() < 5);
            for (a, b) in v {
                prop_assert!(a < 3 && (1..4).contains(&b));
            }
        }

        #[test]
        fn sets_hit_requested_sizes(s in crate::collection::btree_set(0u32..8, 1..4)) {
            prop_assert!(!s.is_empty() && s.len() < 4);
        }

        #[test]
        fn oneof_draws_each_branch(x in prop_oneof![0u32..1, 10u32..11]) {
            prop_assert!(x == 0 || x == 10);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_attribute_parses(x in any::<u64>()) {
            let _ = x;
        }
    }

    #[test]
    fn union_covers_all_branches() {
        use crate::strategy::Strategy;
        let u = prop_oneof![0u32..1, 1u32..2, 2u32..3];
        let mut rng = crate::test_runner::TestRng::deterministic();
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.new_value(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
