//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate provides the subset of the criterion 0.5 API that the
//! `gfomc-bench` targets use — [`Criterion`], [`BenchmarkGroup`],
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark is warmed up briefly,
//! then timed over `sample_size` samples whose per-iteration medians are
//! reported to stdout. There are no plots, baselines, or statistical
//! regression tests — good enough to regenerate the experiment timing series
//! and to keep `cargo bench` runnable offline.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver handed to every `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Warm-up budget before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Command-line configuration is accepted but ignored by this stand-in.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, name, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Printed by [`criterion_main!`] after all groups run.
    pub fn final_summary(&self) {}
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run `f` as `group_name/id`.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(self.criterion, &full, f);
        self
    }

    /// Run `f` as `group_name/id` with a borrowed input value.
    pub fn bench_with_input<I, F, T: ?Sized>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &T),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(self.criterion, &full, |b| f(b, input));
        self
    }

    /// End the group. (No summary state to flush in this stand-in.)
    pub fn finish(self) {}
}

/// A benchmark identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Identify a benchmark by its parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl<S: Into<String>> From<S> for BenchmarkId {
    fn from(s: S) -> Self {
        BenchmarkId { id: s.into() }
    }
}

/// Times the closure handed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` `self.iters` times, recording total elapsed wall-clock time.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(config: &Criterion, name: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up: also estimates a per-iteration cost so each sample's
    // iteration count roughly fits the measurement budget.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    while warm_start.elapsed() < config.warm_up_time || warm_iters == 0 {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        warm_iters += 1;
    }
    let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;

    let per_sample = config.measurement_time / config.sample_size.max(1) as u32;
    let iters = if per_iter.is_zero() {
        1
    } else {
        (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    };

    let mut samples: Vec<Duration> = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed / iters as u32);
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[0], samples[samples.len() - 1]);
    println!(
        "{name:<40} time: [{lo:>10.2?} {median:>10.2?} {hi:>10.2?}]  ({} samples × {} iters)",
        samples.len(),
        iters
    );
}

/// Bundle benchmark functions into a named group, with optional shared
/// configuration — both forms of the real macro are accepted.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = ::core::default::Default::default();
            targets = $($target),+
        }
    };
}

/// The `main` of a `harness = false` bench target: run every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags (`--bench`,
            // filters); this stand-in runs everything regardless.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("grouped");
        for n in [1u64, 2] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| black_box(n * n))
            });
        }
        group.bench_function("named", |b| b.iter(|| black_box(0)));
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        targets = sample_bench
    }

    criterion_group!(default_config_benches, sample_bench);

    #[test]
    fn groups_run_to_completion() {
        benches();
        default_config_benches();
    }
}
