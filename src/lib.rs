//! # gfomc — Generalized Model Counting for Unions of Conjunctive Queries
//!
//! A from-scratch Rust implementation of the theory and constructions of
//! **Kenig & Suciu, "A Dichotomy for the Generalized Model Counting Problem
//! for Unions of Conjunctive Queries" (PODS 2021, arXiv:2008.00896)**:
//! exact probabilistic query evaluation over tuple-independent databases,
//! the safe/unsafe dichotomy with its PTIME lifted evaluator, and the full
//! #P-hardness machinery (gadget blocks, transfer matrices, the big linear
//! system, the `#P2CNF` Cook reduction, the zig-zag rewriting, and the
//! Type-II Möbius formula) as runnable, tested code.
//!
//! ## Crate map
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`arith`] | `gfomc-arith` | Big integers, rationals, `Q(√d)` |
//! | [`linalg`] | `gfomc-linalg` | Exact matrices, Gaussian elimination |
//! | [`poly`] | `gfomc-poly` | Multivariate polynomials, arithmetization |
//! | [`logic`] | `gfomc-logic` | Monotone CNF, exact WMC, disconnection |
//! | [`query`] | `gfomc-query` | Bipartite ∀CNF queries, Möbius lattices |
//! | [`tid`] | `gfomc-tid` | Probabilistic databases, lineage, `Pr(Q)` |
//! | [`safety`] | `gfomc-safety` | Dichotomy classifier, lifted evaluation |
//! | [`approx`] | `gfomc-approx` | Karp–Luby sampling, (ε, δ) estimates |
//! | [`engine`] | `gfomc-engine` | Knowledge compilation, batching, routing |
//! | [`core`] | `gfomc-core` | Blocks, reductions, hardness machinery |
//!
//! ## Quickstart
//!
//! ```
//! use gfomc::prelude::*;
//!
//! // The intro's running query H1 = ∀x∀y (R(x) ∨ S(x,y)) ∧ (S(x,y) ∨ T(y)).
//! let q = catalog::h1();
//!
//! // The dichotomy: H1 is unsafe, so GFOMC(H1) is #P-hard (Theorem 2.2) …
//! let report = classify(&q);
//! assert!(!report.safe);
//! assert!(report.is_final);
//!
//! // … but any concrete instance still evaluates exactly.
//! let mut db = Tid::all_present([0], [100]);
//! db.set_prob(Tuple::R(0), Rational::one_half());
//! db.set_prob(Tuple::S(0, 0, 100), Rational::one_half());
//! db.set_prob(Tuple::T(100), Rational::one_half());
//! assert_eq!(probability(&q, &db), Rational::from_ints(5, 8));
//! ```

pub use gfomc_approx as approx;
pub use gfomc_arith as arith;
pub use gfomc_core as core;
pub use gfomc_engine as engine;
pub use gfomc_linalg as linalg;
pub use gfomc_logic as logic;
pub use gfomc_poly as poly;
pub use gfomc_query as query;
pub use gfomc_safety as safety;
pub use gfomc_tid as tid;

/// The commonly-used names, for `use gfomc::prelude::*`.
pub mod prelude {
    pub use gfomc_approx::{
        AdaptiveConfig, AdaptiveEstimate, CnfSampler, ConfidenceInterval, Estimate, KarpLuby,
    };
    pub use gfomc_arith::{Integer, Natural, QuadExt, Rational};
    pub use gfomc_core::zigzag::{zg_database, zg_query, ZigzagQuery};
    pub use gfomc_core::{
        big_system, block_database, gfomc_nonroot, parallel_block, path_block,
        probability_via_factorization, reduce_p2cnf, signature_counts, transfer_matrix, ConstAlloc,
        EigenData, OracleMode, P2Cnf, Pp2Cnf, ReductionOutcome,
    };
    pub use gfomc_engine::{
        AutoResult, Budget, CacheStats, Compiled, Engine, Route, RouteCounts, Routed, SampleMode,
        TupleWeights,
    };
    pub use gfomc_linalg::Matrix;
    pub use gfomc_logic::{wmc, Cnf, Var};
    pub use gfomc_poly::{arithmetize, PVar, Poly};
    pub use gfomc_query::{
        catalog, BipartiteQuery, Clause, MobiusLattice, PartType, Pred, QueryType,
    };
    pub use gfomc_safety::{
        classify, is_final, is_final_type_i, is_final_type_ii, is_forbidden_type_ii, is_safe,
        is_unsafe, left_ubiquitous_symbols, lifted_probability, query_length,
        right_ubiquitous_symbols, simplify_to_final, Classification,
    };
    pub use gfomc_tid::{
        generalized_model_count, lineage, probability, probability_brute_force, Tid, Tuple,
    };
}
