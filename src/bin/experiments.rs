//! Runs the complete experiment suite E1–E17 of EXPERIMENTS.md and prints a
//! paper-vs-measured report. Every line is an exact check (rational
//! arithmetic), so "PASS" means machine-verified equality, not approximate
//! agreement.
//!
//! Run with `cargo run --release --bin experiments`.

use gfomc::core::ccp::{ccp_counts, pp2cnf_from_ccp, CcpInstance};
use gfomc::core::reduction_type2::{qab_map_is_invertible, theorem_c19_holds, type_ii_lattices};
use gfomc::core::small_matrix::{
    block_small_matrix, corollary_3_18_constant, theorem_3_16_at_half,
};
use gfomc::core::transfer::{lemma_3_19_holds, proposition_3_20_holds};
use gfomc::core::zigzag::{pseudo_random_delta, zg_database, zg_query};
use gfomc::logic::{Clause as PClause, Cnf};
use gfomc::prelude::*;
use std::time::Instant;

struct Report {
    rows: Vec<(String, String, bool, f64)>,
}

impl Report {
    fn check(&mut self, id: &str, claim: &str, f: impl FnOnce() -> bool) {
        let t0 = Instant::now();
        let ok = f();
        let dt = t0.elapsed().as_secs_f64();
        println!(
            "{:<4} {:<58} {:>6} {:>9.3}s",
            id,
            claim,
            if ok { "PASS" } else { "FAIL" },
            dt
        );
        self.rows.push((id.to_string(), claim.to_string(), ok, dt));
    }
}

fn final_type_i() -> Vec<(&'static str, BipartiteQuery)> {
    vec![
        ("h1", catalog::h1()),
        ("h2", catalog::hk(2)),
        ("h3", catalog::hk(3)),
    ]
}

fn main() {
    println!(
        "{:<4} {:<58} {:>6} {:>10}",
        "exp", "claim (paper anchor)", "ok", "time"
    );
    println!("{}", "-".repeat(82));
    let mut r = Report { rows: Vec::new() };

    // E1: the headline reduction.
    r.check(
        "E1",
        "Thm 3.1: #P2CNF recovered via FOMC(Q) oracle (4 graphs)",
        || {
            let graphs = [
                P2Cnf::new(2, vec![(0, 1)]),
                P2Cnf::new(3, vec![(0, 1), (1, 2)]),
                P2Cnf::new(3, vec![(0, 1), (1, 2), (0, 2)]),
                P2Cnf::new(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]),
            ];
            graphs.iter().all(|phi| {
                let out = reduce_p2cnf(&catalog::h1(), phi, OracleMode::Factorized);
                out.model_count == phi.count_models()
                    && out.signature_counts == signature_counts(phi)
            })
        },
    );

    // E2: Lemma 3.19.
    r.check(
        "E2",
        "Lem 3.19: A(p) = A(1)^p / 2^(p-1), p=1..4, 3 queries",
        || {
            final_type_i()
                .iter()
                .all(|(_, q)| (1..=4).all(|p| lemma_3_19_holds(q, p)))
        },
    );

    // E3: Theorem 3.16 / Corollary 3.18.
    r.check(
        "E3",
        "Thm 3.16: det A(1) != 0 at all-1/2; Cor 3.18 shape",
        || {
            final_type_i().iter().all(|(_, q)| theorem_3_16_at_half(q))
                && corollary_3_18_constant(&catalog::h1()).is_some()
        },
    );

    // E4: Proposition 3.20.
    r.check("E4", "Prop 3.20: 0 < z00 < z01 = z10 < z11 <= 1", || {
        final_type_i()
            .iter()
            .all(|(_, q)| proposition_3_20_holds(&transfer_matrix(q, 1)))
    });

    // E5: Theorem 3.14 conditions over Q(sqrt d).
    r.check(
        "E5",
        "Thm 3.14: conditions (22)-(24) exactly in Q(sqrt d)",
        || {
            final_type_i().iter().all(|(_, q)| {
                EigenData::decompose(&transfer_matrix(q, 1)).theorem_3_14_conditions()
            })
        },
    );

    // E6: big system non-singularity.
    r.check(
        "E6",
        "Thm 3.6: big system invertible, m=1..3, 2 queries",
        || {
            [catalog::h1(), catalog::hk(2)].iter().all(|q| {
                (1..=3).all(|m| {
                    let z: Vec<Matrix<Rational>> =
                        (1..=m + 1).map(|p| transfer_matrix(q, p)).collect();
                    big_system(&z, m).matrix.is_invertible()
                })
            })
        },
    );

    // E7: the dichotomy classifier + both evaluators agree.
    r.check(
        "E7",
        "Thm 2.2: classifier + lifted/exact agreement (catalog)",
        || {
            let mut ok = true;
            for (_, q) in catalog::unsafe_catalog() {
                ok &= is_unsafe(&q);
            }
            for (_, q) in catalog::safe_catalog() {
                ok &= is_safe(&q);
                let db = uniform_db(&q, 3, 3);
                ok &= lifted_probability(&q, &db).unwrap() == probability(&q, &db);
            }
            ok
        },
    );

    // E8: Lemma 1.1.
    r.check(
        "E8",
        "Lem 1.1: {0,1/2,1} non-root found for block dets",
        || {
            final_type_i().iter().all(|(_, q)| {
                let det = block_small_matrix(q).determinant();
                let (theta, v) = gfomc_nonroot(&det);
                !v.is_zero() && det.eval(&theta) == v
            })
        },
    );

    // E9: Lemma 1.2 both directions.
    r.check(
        "E9",
        "Lem 1.2: det(y) = 0 iff lineage disconnects R,T",
        || {
            use gfomc::core::small_matrix::lemma_1_2_agrees;
            let connected = Cnf::new([
                PClause::new([Var(0), Var(1)]),
                PClause::new([Var(1), Var(2)]),
            ]);
            let disconnected = Cnf::new([
                PClause::new([Var(0), Var(1)]),
                PClause::new([Var(2), Var(3)]),
            ]);
            lemma_1_2_agrees(&connected, Var(0), Var(2))
                && lemma_1_2_agrees(&disconnected, Var(0), Var(2))
                && final_type_i()
                    .iter()
                    .all(|(_, q)| !block_small_matrix(q).is_singular())
        },
    );

    // E10: zg rewriting.
    r.check(
        "E10",
        "Lem 2.6/A.1: Pr_D(zg(Q)) = Pr_zg(D)(Q), 3 query types",
        || {
            let cases = [
                (catalog::h1(), 2, 2),
                (catalog::example_a3(), 1, 1),
                (catalog::example_c15(), 1, 2),
            ];
            cases.iter().all(|(q, nu, nv)| {
                let zq = zg_query(q);
                let delta = pseudo_random_delta(&zq, *nu, *nv, 42);
                probability(&zq.query, &delta) == probability(q, &zg_database(&zq, &delta))
            })
        },
    );

    // E11: Möbius lattice examples.
    r.check(
        "E11",
        "Def C.6/Ex C.7: Moebius values match worked examples",
        || {
            let conj =
                |vars: &[u32]| -> Cnf { Cnf::new(vars.iter().map(|&v| PClause::new([Var(v)]))) };
            let lat1 = MobiusLattice::build(&[conj(&[1, 2]), conj(&[1, 3]), conj(&[2, 3])]);
            let lat2 = MobiusLattice::build(&[conj(&[1, 2]), conj(&[2, 3]), conj(&[3, 4])]);
            lat1.elements.len() == 5
                && lat1.elements.last().unwrap().mobius == Integer::from(2i64)
                && lat2.elements.len() == 7
                && lat2.support().len() == 6
        },
    );

    // E12: Type-II Möbius formula + CCP.
    r.check(
        "E12",
        "Thm C.19 + C.3: Moebius block formula; #PP2CNF via CCP",
        || {
            let half = |_s: u32, _u: u32, _v: u32| Rational::one_half();
            let c19 = theorem_c19_holds(&catalog::example_c15(), 2, 2, &half)
                && theorem_c19_holds(&catalog::example_c9(), 2, 2, &half);
            let phi = Pp2Cnf::new(2, 2, vec![(0, 0), (0, 1), (1, 1)]);
            let counts = ccp_counts(&CcpInstance::from_pp2cnf(&phi), 2, 2);
            let lats = type_ii_lattices(&catalog::example_c15());
            c19 && pp2cnf_from_ccp(&counts) == phi.count_models()
                && lats.left.strict_support().len() == 3
                && qab_map_is_invertible(&catalog::example_c15())
        },
    );

    // E13: FOMC audit of all reduction databases.
    r.check(
        "E13",
        "Thm 2.9(1): every reduction DB uses only {1/2, 1}",
        || {
            let phi = P2Cnf::new(3, vec![(0, 1), (1, 2)]);
            let mut ok = true;
            for p1 in 1..=3 {
                for p2 in p1..=3 {
                    ok &= block_database(&catalog::h1(), &phi, &[p1, p2]).is_fomc_instance();
                }
            }
            ok
        },
    );

    // E14: lifted vs exact on random safe instances.
    r.check(
        "E14",
        "safe side: lifted PTIME plan == exact WMC (3x3)",
        || {
            catalog::safe_catalog().iter().all(|(_, q)| {
                let db = uniform_db(q, 3, 3);
                lifted_probability(q, &db).unwrap() == probability(q, &db)
            })
        },
    );

    // E15: Theorem 3.4 factorization.
    r.check(
        "E15",
        "Thm 3.4: block factorization == monolithic WMC",
        || {
            let phi = P2Cnf::new(3, vec![(0, 1), (1, 2)]);
            let q = catalog::h1();
            let tid = block_database(&q, &phi, &[1, 2]);
            let t = [transfer_matrix(&q, 1), transfer_matrix(&q, 2)];
            probability(&q, &tid) == probability_via_factorization(&phi, &t)
        },
    );

    // E16: Type-II block structure (Def. C.21, §C.8).
    r.check(
        "E16",
        "Def C.21/§C.8: block connectivity + shared recurrence",
        || {
            use gfomc::core::reduction_type2::type_ii_lattices;
            use gfomc::core::type2_block::{type2_block, y_alpha_beta, y_table};
            use gfomc::core::ConstAlloc;
            let q = catalog::example_c15();
            // Connectivity (Lemma C.23) over a p=1 block.
            let lats = type_ii_lattices(&q);
            let mut alloc = ConstAlloc::new(10, 10);
            let block = type2_block(&q, 0, 0, 1, 1, &mut alloc);
            let mut connected = true;
            for a in lats.left.strict_support() {
                for b in lats.right.strict_support() {
                    let (cnf, _) = y_alpha_beta(&q, &block, &a.formula, &b.formula);
                    connected &= cnf.is_connected();
                }
            }
            // Shared order-2 recurrence across all (α,β) (Eq. (79)).
            let tables: Vec<_> = (1..=4).map(|p| y_table(&q, p, 1)).collect();
            let s: Vec<Rational> = tables.iter().map(|t| t[0][0].clone()).collect();
            let det = &(&s[1] * &s[1]) - &(&s[2] * &s[0]);
            if det.is_zero() {
                return false;
            }
            let c1 = &(&(&s[2] * &s[1]) - &(&s[3] * &s[0])) / &det;
            let c2 = &(&(&s[3] * &s[1]) - &(&s[2] * &s[2])) / &det;
            let mut recurrence = true;
            for ai in 0..tables[0].len() {
                for bi in 0..tables[0][0].len() {
                    let seq: Vec<Rational> = tables.iter().map(|t| t[ai][bi].clone()).collect();
                    for p in 0..2 {
                        recurrence &= &(&c1 * &seq[p + 1]) + &(&c2 * &seq[p]) == seq[p + 2];
                    }
                }
            }
            connected && recurrence
        },
    );

    // E17: shattering (Example C.14).
    r.check(
        "E17",
        "Lem C.16/Ex C.14: shattering preserves Pr exactly",
        || {
            use gfomc::core::shattering::{
                random_delta_prime, shatter_database, shattered_query, source_query,
            };
            (0..4u64).all(|seed| {
                let dp = random_delta_prime(2, 2, seed);
                let d = shatter_database(&dp);
                probability(&shattered_query(), &dp) == probability(&source_query(), &d)
            })
        },
    );

    println!("{}", "-".repeat(82));
    let passed = r.rows.iter().filter(|(_, _, ok, _)| *ok).count();
    println!("{passed}/{} experiments PASS", r.rows.len());
    assert_eq!(passed, r.rows.len(), "experiment failures");
}

fn uniform_db(q: &BipartiteQuery, nu: u32, nv: u32) -> Tid {
    let left: Vec<u32> = (0..nu).collect();
    let right: Vec<u32> = (1000..1000 + nv).collect();
    let mut tid = Tid::all_present(left.clone(), right.clone());
    for &u in &left {
        tid.set_prob(Tuple::R(u), Rational::one_half());
        for &v in &right {
            for s in q.binary_symbols() {
                tid.set_prob(Tuple::S(s, u, v), Rational::one_half());
            }
        }
    }
    for &v in &right {
        tid.set_prob(Tuple::T(v), Rational::one_half());
    }
    tid
}
